"""Tests for the output grid (Section 5's output cells)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.output_space import OutputGrid, grid_for_cells
from repro.errors import ExecutionError


@pytest.fixture
def grid():
    return OutputGrid(dims=("d1", "d2"), lows=(0.0, 0.0), highs=(10.0, 20.0), divisions=5)


class TestCoordOf:
    def test_interior_point(self, grid):
        assert grid.coord_of(np.array([3.0, 10.0])) == (1, 2)

    def test_lower_corner(self, grid):
        assert grid.coord_of(np.array([0.0, 0.0])) == (0, 0)

    def test_upper_corner_clamped(self, grid):
        assert grid.coord_of(np.array([10.0, 20.0])) == (4, 4)

    def test_out_of_range_clamped(self, grid):
        assert grid.coord_of(np.array([-5.0, 25.0])) == (0, 4)

    def test_wrong_arity(self, grid):
        with pytest.raises(ExecutionError):
            grid.coord_of(np.array([1.0]))


class TestCellBounds:
    def test_cell_lower_upper(self, grid):
        np.testing.assert_allclose(grid.cell_lower((1, 2)), [2.0, 8.0])
        np.testing.assert_allclose(grid.cell_upper((1, 2)), [4.0, 12.0])

    def test_invalid_coord(self, grid):
        with pytest.raises(ExecutionError):
            grid.cell_lower((5, 0))

    def test_point_within_its_cell(self, grid):
        point = np.array([7.3, 15.1])
        coord = grid.coord_of(point)
        assert np.all(grid.cell_lower(coord) <= point)
        assert np.all(point <= grid.cell_upper(coord))


class TestBoxes:
    def test_box_of(self, grid):
        lo, hi = grid.box_of(np.array([1.0, 1.0]), np.array([9.0, 19.0]))
        assert lo == (0, 0) and hi == (4, 4)

    def test_box_cell_count(self):
        assert OutputGrid.box_cell_count((0, 0), (2, 3)) == 12
        assert OutputGrid.box_cell_count((1, 1), (1, 1)) == 1

    def test_invalid_box(self):
        with pytest.raises(ExecutionError):
            OutputGrid.box_cell_count((2,), (1,))

    def test_cells_in_box(self):
        cells = list(OutputGrid.cells_in_box((0, 1), (1, 2)))
        assert cells == [(0, 1), (0, 2), (1, 1), (1, 2)]


class TestGridForCells:
    def test_spans_all_regions(self):
        grid = grid_for_cells(
            ("d1", "d2"),
            [np.array([1.0, 2.0]), np.array([0.0, 5.0])],
            [np.array([5.0, 8.0]), np.array([9.0, 6.0])],
            divisions=4,
        )
        assert grid.lows == (0.0, 2.0)
        assert grid.highs == (9.0, 8.0)

    def test_empty_rejected(self):
        with pytest.raises(ExecutionError):
            grid_for_cells(("d1",), [], [])


class TestValidation:
    def test_degenerate_dimension_allowed(self):
        grid = OutputGrid(dims=("d1",), lows=(5.0,), highs=(5.0,), divisions=4)
        assert grid.coord_of(np.array([5.0])) == (0,)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ExecutionError):
            OutputGrid(dims=("d1",), lows=(5.0,), highs=(4.0,))

    def test_zero_divisions_rejected(self):
        with pytest.raises(ExecutionError):
            OutputGrid(dims=("d1",), lows=(0.0,), highs=(1.0,), divisions=0)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            OutputGrid(dims=("d1", "d2"), lows=(0.0,), highs=(1.0,))


@given(
    x=st.floats(0, 10, allow_nan=False),
    y=st.floats(0, 20, allow_nan=False),
    divisions=st.integers(1, 12),
)
@settings(max_examples=80, deadline=None)
def test_property_every_point_lands_in_containing_cell(x, y, divisions):
    grid = OutputGrid(("a", "b"), (0.0, 0.0), (10.0, 20.0), divisions)
    point = np.array([x, y])
    coord = grid.coord_of(point)
    assert np.all(grid.cell_lower(coord) <= point + 1e-9)
    assert np.all(point <= grid.cell_upper(coord) + 1e-9)
