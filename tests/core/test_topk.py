"""Tests for contract-driven Top-K-over-join processing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import c1, c2
from repro.core import CAQEConfig
from repro.core.topk import TopKEngine, TopKJoinQuery, reference_topk
from repro.datagen import generate_pair
from repro.errors import ExecutionError, QueryError
from repro.query import JoinCondition, add


def _functions(dims=3):
    return tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, dims + 1))


def _query(name, weights, k, jc="jc1", priority=1.0):
    return TopKJoinQuery(
        name=name,
        join_condition=JoinCondition.on(jc, name=f"JC:{jc}"),
        functions=_functions(len(weights)),
        weights=tuple(weights),
        k=k,
        priority=priority,
    )


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 150, 3, selectivity=0.05, seed=71)


class TestQuerySpec:
    def test_rejects_bad_k(self):
        with pytest.raises(QueryError):
            _query("q", (1.0, 1.0, 1.0), 0)

    def test_rejects_weight_arity(self):
        with pytest.raises(QueryError):
            TopKJoinQuery(
                "q", JoinCondition.on("jc1"), _functions(3), (1.0,), k=2
            )

    def test_rejects_negative_weights(self):
        with pytest.raises(QueryError):
            _query("q", (1.0, -1.0, 0.0), 2)

    def test_rejects_all_zero_weights(self):
        with pytest.raises(QueryError):
            _query("q", (0.0, 0.0, 0.0), 2)

    def test_score(self):
        query = _query("q", (1.0, 2.0, 0.0), 2)
        scores = query.score(np.array([[1.0, 1.0, 9.0], [2.0, 0.0, 9.0]]))
        np.testing.assert_array_equal(scores, [3.0, 2.0])


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_single_query_matches_reference(self, pair, k):
        query = _query("q", (1.0, 0.5, 2.0), k)
        contracts = {"q": c1(1e12)}
        result = TopKEngine().run(pair.left, pair.right, [query], contracts)
        assert result.results["q"] == reference_topk(query, pair.left, pair.right)

    def test_multi_query_workload(self, pair):
        queries = [
            _query("cheap", (1.0, 0.0, 0.0), 10, priority=0.9),
            _query("balanced", (1.0, 1.0, 1.0), 5, priority=0.5),
            _query("quality", (0.0, 2.0, 1.0), 8, priority=0.2),
        ]
        contracts = {q.name: c2(scale=1000.0) for q in queries}
        result = TopKEngine().run(pair.left, pair.right, queries, contracts)
        for query in queries:
            assert result.results[query.name] == reference_topk(
                query, pair.left, pair.right
            ), query.name

    def test_k_larger_than_result_count(self, pair):
        query = _query("q", (1.0, 1.0, 1.0), 10**6)
        result = TopKEngine().run(
            pair.left, pair.right, [query], {"q": c1(1e12)}
        )
        assert result.results["q"] == reference_topk(query, pair.left, pair.right)
        assert len(result.results["q"]) < 10**6

    def test_tie_heavy_scores(self):
        """Integer-quantised data creates exact score ties; the engine's
        pruning must stay tie-safe."""
        pair = generate_pair("independent", 80, 3, selectivity=0.2, seed=5)
        from repro.relation import Relation

        def quantise(rel):
            cols = {
                n: (np.round(rel.column(n) / 25.0) * 25.0 if n.startswith("m")
                    else rel.column(n))
                for n in rel.schema.names
            }
            return Relation(rel.name, rel.schema, cols)

        left, right = quantise(pair.left), quantise(pair.right)
        query = _query("q", (1.0, 1.0, 0.0), 7)
        result = TopKEngine().run(left, right, [query], {"q": c1(1e12)})
        assert result.results["q"] == reference_topk(query, left, right)

    def test_region_pruning_saves_join_work(self, pair):
        """With a tiny k, most regions should be discarded unjoined."""
        query = _query("q", (1.0, 1.0, 1.0), 1)
        result = TopKEngine(CAQEConfig(target_cells=24)).run(
            pair.left, pair.right, [query], {"q": c1(1e12)}
        )
        summary = result.stats.summary()
        assert summary["regions_discarded"] > 0
        # Far fewer join results than the full join.
        from repro.query import hash_join

        li, _ = hash_join(pair.left, pair.right, query.join_condition)
        assert summary["join_results"] < len(li)


class TestProgressiveness:
    def test_results_reported_before_horizon(self, pair):
        query = _query("q", (1.0, 1.0, 1.0), 20)
        result = TopKEngine().run(
            pair.left, pair.right, [query], {"q": c2(scale=100.0)}
        )
        ts = result.logs["q"].timestamps
        assert len(ts) == len(result.results["q"])
        assert ts.min() < result.horizon

    def test_satisfaction_in_unit_interval(self, pair):
        query = _query("q", (1.0, 1.0, 1.0), 10)
        result = TopKEngine().run(
            pair.left, pair.right, [query], {"q": c2(scale=100.0)}
        )
        assert 0.0 <= result.average_satisfaction() <= 1.0


class TestApi:
    def test_empty_workload_rejected(self, pair):
        with pytest.raises(ExecutionError):
            TopKEngine().run(pair.left, pair.right, [], {})

    def test_missing_contract_rejected(self, pair):
        query = _query("q", (1.0, 1.0, 1.0), 3)
        with pytest.raises(ExecutionError):
            TopKEngine().run(pair.left, pair.right, [query], {})

    def test_duplicate_names_rejected(self, pair):
        query = _query("q", (1.0, 1.0, 1.0), 3)
        with pytest.raises(ExecutionError):
            TopKEngine().run(
                pair.left, pair.right, [query, query], {"q": c1(1.0)}
            )


@given(
    seed=st.integers(0, 2000),
    k=st.integers(1, 15),
    w1=st.floats(0.0, 3.0),
    w2=st.floats(0.1, 3.0),
)
@settings(max_examples=20, deadline=None)
def test_property_topk_always_matches_reference(seed, k, w1, w2):
    pair = generate_pair("independent", 60, 2, selectivity=0.1, seed=seed)
    query = TopKJoinQuery(
        "q", JoinCondition.on("jc1"), _functions(2), (w1, w2), k=k
    )
    result = TopKEngine().run(pair.left, pair.right, [query], {"q": c1(1e12)})
    assert result.results["q"] == reference_topk(query, pair.left, pair.right)
