"""Tests for WorkloadPlan: lineage-grouped shared skyline state."""

import numpy as np
import pytest

from repro.plan import WorkloadPlan
from repro.query import (
    AttributeFilter,
    JoinCondition,
    Op,
    Preference,
    SkylineJoinQuery,
    Workload,
    add,
)
from repro.skyline.dominance import ComparisonCounter


@pytest.fixture
def fns():
    return tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3))


def _q(name, jc_attr, pref, fns, **kwargs):
    return SkylineJoinQuery(
        name, JoinCondition.on(jc_attr, name=f"JC:{jc_attr}"), fns,
        Preference.over(*pref), **kwargs,
    )


class TestGrouping:
    def test_single_condition_single_group(self, fns):
        wl = Workload(
            [
                _q("a", "jc1", ("d1", "d2"), fns),
                _q("b", "jc1", ("d2", "d3"), fns),
            ]
        )
        plan = WorkloadPlan(wl, wl.output_dims)
        assert plan.group_count == 1

    def test_conditions_split_groups(self, fns):
        wl = Workload(
            [
                _q("a", "jc1", ("d1", "d2"), fns),
                _q("b", "jc2", ("d1", "d2"), fns),
            ]
        )
        plan = WorkloadPlan(wl, wl.output_dims)
        assert plan.group_count == 2

    def test_filters_split_groups(self, fns):
        filt = (AttributeFilter("m1", Op.LE, 50.0),)
        wl = Workload(
            [
                _q("a", "jc1", ("d1", "d2"), fns),
                _q("b", "jc1", ("d1", "d2"), fns, left_filters=filt),
                _q("c", "jc1", ("d2", "d3"), fns, left_filters=filt),
            ]
        )
        plan = WorkloadPlan(wl, wl.output_dims)
        assert plan.group_count == 2  # {a} and {b, c}


class TestLineageIsolation:
    def test_cross_condition_tuples_do_not_evict(self, fns):
        """The regression scenario: a JC1 tuple dominating a JC2 candidate
        in the shared subspace must leave the JC2 window untouched."""
        wl = Workload(
            [
                _q("wide", "jc1", ("d1", "d2", "d3"), fns),
                _q("narrow", "jc2", ("d1", "d2"), fns),
            ]
        )
        plan = WorkloadPlan(wl, wl.output_dims)
        # Key 0: a JC2 join result (serves only 'narrow', bit 1).
        plan.insert(0, np.array([5.0, 5.0, 5.0]), serve_mask=0b10)
        assert plan.is_candidate("narrow", 0)
        # Key 1: a JC1 tuple dominating key 0 — but not a JC2 result.
        report = plan.insert(1, np.array([1.0, 1.0, 1.0]), serve_mask=0b01)
        assert report.admitted == {"wide"}
        assert plan.is_candidate("narrow", 0), "cross-condition eviction!"
        assert not plan.is_candidate("narrow", 1)

    def test_within_group_eviction_reported_per_query(self, fns):
        wl = Workload(
            [
                _q("a", "jc1", ("d1", "d2"), fns),
                _q("b", "jc1", ("d2", "d3"), fns),
            ]
        )
        plan = WorkloadPlan(wl, wl.output_dims)
        plan.insert(0, np.array([1.0, 9.0, 1.0]))  # in a's and b's skylines
        report = plan.insert(1, np.array([0.5, 0.5, 0.5]))  # dominates all
        assert report.admitted == {"a", "b"}
        assert set(report.evicted) == {"a", "b"}
        assert report.evicted["a"] == [0]

    def test_serve_mask_none_means_everyone(self, fns):
        wl = Workload([_q("a", "jc1", ("d1", "d2"), fns)])
        plan = WorkloadPlan(wl, wl.output_dims)
        report = plan.insert(0, np.array([1.0, 1.0, 1.0]))
        assert report.admitted == {"a"}

    def test_counter_shared_across_groups(self, fns):
        counter = ComparisonCounter()
        wl = Workload(
            [
                _q("a", "jc1", ("d1", "d2"), fns),
                _q("b", "jc2", ("d1", "d2"), fns),
            ]
        )
        plan = WorkloadPlan(wl, wl.output_dims, counter=counter)
        plan.insert(0, np.array([1.0, 1.0, 1.0]))
        plan.insert(1, np.array([2.0, 2.0, 2.0]))
        assert counter.comparisons > 0
