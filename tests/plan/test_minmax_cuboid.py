"""Tests for the min-max cuboid (Definition 7, Figure 6)."""

import pytest

from repro.errors import PlanError
from repro.plan import build_minmax_cuboid
from repro.query import subspace_workload


class TestFigure6:
    """The paper's exact example: the Figure-1 workload must produce the
    Figure-6 cuboid — 4 singletons, {d1,d2} and {d2,d3}, and the two
    3-d query subspaces."""

    @pytest.fixture(autouse=True)
    def _build(self, figure1_workload):
        self.cuboid = build_minmax_cuboid(figure1_workload)
        self.table = self.cuboid.lattice.table

    def test_total_size(self):
        assert len(self.cuboid) == 8  # vs 15 in the full skycube

    def test_level0_has_all_singletons(self):
        names = {self.table.names(m) for m in self.cuboid.levels[0]}
        assert names == {("d1",), ("d2",), ("d3",), ("d4",)}

    def test_level1_exactly_figure6(self):
        names = {self.table.names(m) for m in self.cuboid.levels[1]}
        assert names == {("d1", "d2"), ("d2", "d3")}

    def test_level2_query_subspaces(self):
        names = {self.table.names(m) for m in self.cuboid.levels[2]}
        assert names == {("d1", "d2", "d3"), ("d2", "d3", "d4")}

    def test_pruned_subspaces_absent(self):
        for pruned in (["d1", "d3"], ["d2", "d4"], ["d3", "d4"], ["d1", "d4"]):
            assert self.table.mask(pruned) not in self.cuboid.nodes

    def test_every_query_has_a_node(self, figure1_workload):
        for query in figure1_workload:
            node = self.cuboid.node_for_query(query.name)
            assert self.table.names(node.mask) == query.preference.dims

    def test_children_wiring(self):
        """{d1,d2,d3}'s cuboid children are {d1,d2} and {d2,d3}."""
        mask = self.table.mask(["d1", "d2", "d3"])
        children = {
            self.table.names(c) for c in self.cuboid.node(mask).children
        }
        assert children == {("d1", "d2"), ("d2", "d3")}

    def test_level1_children_are_singletons(self):
        mask = self.table.mask(["d1", "d2"])
        children = {self.table.names(c) for c in self.cuboid.node(mask).children}
        assert children == {("d1",), ("d2",)}

    def test_describe_renders_levels(self):
        text = self.cuboid.describe()
        assert "level 0" in text and "{d1, d2}" in text

    def test_unknown_mask_raises(self):
        with pytest.raises(PlanError):
            self.cuboid.node(self.table.mask(["d1", "d4"]))


class TestDefinition7Conditions:
    def test_reasons_recorded(self, figure1_workload):
        cuboid = build_minmax_cuboid(figure1_workload)
        t = cuboid.lattice.table
        # Singletons are admitted by condition 1.
        assert 1 in cuboid.node(t.mask(["d1"])).reasons
        # Query subspaces by condition 3.
        assert 3 in cuboid.node(t.mask(["d1", "d2", "d3"])).reasons

    def test_condition2_maximal_subspaces(self, figure1_workload):
        cuboid = build_minmax_cuboid(figure1_workload)
        t = cuboid.lattice.table
        # {d2,d3,d4} has no absorbing superset -> condition 2 holds too.
        assert 2 in cuboid.node(t.mask(["d2", "d3", "d4"])).reasons


class TestElevenQueryWorkload:
    def test_cuboid_is_full_lattice_when_every_subspace_is_a_query(
        self, eleven_query_workload
    ):
        """With all 2..4-d subsets as queries, no subspace can be pruned."""
        cuboid = build_minmax_cuboid(eleven_query_workload)
        assert len(cuboid) == 15

    def test_masks_bottom_up_order(self, eleven_query_workload):
        cuboid = build_minmax_cuboid(eleven_query_workload)
        sizes = [m.bit_count() for m in cuboid.masks]
        assert sizes == sorted(sizes)


class TestSmallWorkloads:
    def test_single_query_cuboid(self):
        wl = subspace_workload(3, min_size=3)  # one query over d1,d2,d3
        cuboid = build_minmax_cuboid(wl)
        # Singletons + the query subspace; 2-d subspaces serve only the one
        # query and are absorbed by it.
        sizes = sorted(m.bit_count() for m in cuboid.masks)
        assert sizes == [1, 1, 1, 3]

    def test_disjoint_queries(self):
        from repro.query import (
            JoinCondition,
            Preference,
            SkylineJoinQuery,
            Workload,
            add,
        )

        jc = JoinCondition.on("jc1")
        fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3, 4))
        wl = Workload(
            [
                SkylineJoinQuery("A", jc, fns, Preference.over("d1", "d2")),
                SkylineJoinQuery("B", jc, fns, Preference.over("d3", "d4")),
            ]
        )
        cuboid = build_minmax_cuboid(wl)
        t = cuboid.lattice.table
        assert t.mask(["d1", "d2"]) in cuboid.nodes
        assert t.mask(["d3", "d4"]) in cuboid.nodes
        assert t.mask(["d1", "d3"]) not in cuboid.nodes
