"""Tests for the workload sharing report."""

import pytest

from repro.plan.report import sharing_report
from repro.query import (
    AttributeFilter,
    JoinCondition,
    Op,
    Preference,
    SkylineJoinQuery,
    Workload,
    add,
    subspace_workload,
)


class TestSharingReport:
    def test_figure1_workload(self, figure1_workload):
        report = sharing_report(figure1_workload)
        assert report.query_count == 4
        assert report.skyline_dimensions == 4
        assert report.lattice_size == 15
        assert report.cuboid_size == 8
        assert report.cuboid_reduction == pytest.approx(7 / 15)
        # The fixture folds Figure 1 onto a single join condition.
        assert report.plan_groups == 1

    def test_eleven_query_workload(self, eleven_query_workload):
        report = sharing_report(eleven_query_workload)
        assert report.cuboid_size == 15  # every subspace is a query's space
        assert report.plan_groups == 1
        # All pairs overlap except the three disjoint 2-dim/2-dim splits.
        assert report.overlapping_pairs == 11 * 10 // 2 - 3

    def test_disjoint_queries_do_not_overlap(self):
        jc = JoinCondition.on("jc1")
        fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3, 4))
        wl = Workload(
            [
                SkylineJoinQuery("a", jc, fns, Preference.over("d1", "d2")),
                SkylineJoinQuery("b", jc, fns, Preference.over("d3", "d4")),
            ]
        )
        report = sharing_report(wl)
        assert report.overlapping_pairs == 0
        assert report.shared_subspaces == 0

    def test_filters_split_plan_groups(self):
        jc = JoinCondition.on("jc1")
        fns = (add("m1", "m1", "d1"),)
        wl = Workload(
            [
                SkylineJoinQuery("a", jc, fns, Preference.over("d1")),
                SkylineJoinQuery(
                    "b", jc, fns, Preference.over("d1"),
                    left_filters=(AttributeFilter("m1", Op.LE, 10.0),),
                ),
            ]
        )
        assert sharing_report(wl).plan_groups == 2

    def test_describe_renders(self):
        report = sharing_report(subspace_workload(3))
        text = report.describe()
        assert "min-max cuboid" in text and "plan groups" in text
