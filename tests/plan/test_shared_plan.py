"""Tests for tuple-level shared skyline evaluation over the cuboid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.plan import SharedCuboidPlan, build_minmax_cuboid
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dominance import ComparisonCounter


@pytest.fixture
def plan(figure1_workload):
    cuboid = build_minmax_cuboid(figure1_workload)
    return SharedCuboidPlan(cuboid, figure1_workload.output_dims)


class TestInsertSemantics:
    def test_admission_report(self, plan):
        report = plan.insert(0, np.array([1.0, 1.0, 1.0, 1.0]))
        # First tuple is in every cuboid skyline.
        assert report.admitted_masks == set(plan.cuboid.masks)
        assert plan.admitted_queries(report) == ["Q1", "Q2", "Q3", "Q4"]

    def test_dominated_tuple_rejected_everywhere(self, plan):
        plan.insert(0, np.array([1.0, 1.0, 1.0, 1.0]))
        report = plan.insert(1, np.array([2.0, 2.0, 2.0, 2.0]))
        assert report.admitted_masks == set()

    def test_eviction_reported_per_query(self, plan, figure1_workload):
        plan.insert(0, np.array([5.0, 5.0, 5.0, 5.0]))
        report = plan.insert(1, np.array([1.0, 1.0, 1.0, 1.0]))
        for query in figure1_workload:
            assert plan.evicted_for_query(report, query.name) == [0]

    def test_subspace_membership_differs(self, plan):
        plan.insert(0, np.array([1.0, 5.0, 5.0, 5.0]))
        plan.insert(1, np.array([5.0, 1.0, 1.0, 1.0]))
        # Over {d2,d3} (Q3), tuple 1 = (1,1) dominates tuple 0 = (5,5).
        assert plan.is_candidate("Q3", 1)
        assert not plan.is_candidate("Q3", 0)
        # Over {d1,d2} (Q1), (1,5) and (5,1) are incomparable: both stay.
        assert plan.is_candidate("Q1", 0) and plan.is_candidate("Q1", 1)

    def test_wrong_vector_width(self, plan):
        with pytest.raises(PlanError):
            plan.insert(0, np.array([1.0, 2.0]))

    def test_serve_mask_restricts_nodes(self, figure1_workload):
        cuboid = build_minmax_cuboid(figure1_workload)
        plan = SharedCuboidPlan(cuboid, figure1_workload.output_dims)
        # Serve only Q1 (bit 0): only nodes serving Q1 are touched.
        report = plan.insert(0, np.array([1.0, 1.0, 1.0, 1.0]), serve_mask=0b0001)
        q1_mask = plan.query_mask("Q1")
        assert q1_mask in report.admitted_masks
        q4_mask = plan.query_mask("Q4")
        assert q4_mask not in report.admitted_masks
        assert len(plan.window(q4_mask)) == 0

    def test_unknown_query_raises(self, plan):
        with pytest.raises(PlanError):
            plan.current_skyline("Q99")

    def test_missing_dims_rejected(self, figure1_workload):
        cuboid = build_minmax_cuboid(figure1_workload)
        with pytest.raises(PlanError, match="lacks"):
            SharedCuboidPlan(cuboid, ("d1", "d2"))


class TestCorrectnessAgainstBNL:
    @pytest.mark.parametrize("assume_dva", [True, False])
    def test_per_query_skylines_match_bnl(
        self, figure1_workload, rng, assume_dva
    ):
        cuboid = build_minmax_cuboid(figure1_workload)
        plan = SharedCuboidPlan(
            cuboid, figure1_workload.output_dims, assume_dva=assume_dva
        )
        pts = rng.random((250, 4)) * 100
        for key in range(len(pts)):
            plan.insert(key, pts[key])
        for query in figure1_workload:
            dims = query.preference.positions(figure1_workload.output_dims)
            expected = set(bnl_skyline(pts, dims=dims))
            assert set(plan.current_skyline(query.name)) == expected

    def test_eleven_query_workload_all_match(self, eleven_query_workload, rng):
        cuboid = build_minmax_cuboid(eleven_query_workload)
        plan = SharedCuboidPlan(cuboid, eleven_query_workload.output_dims)
        pts = rng.random((150, 4)) * 100
        for key in range(len(pts)):
            plan.insert(key, pts[key])
        for query in eleven_query_workload:
            dims = query.preference.positions(eleven_query_workload.output_dims)
            assert set(plan.current_skyline(query.name)) == set(
                bnl_skyline(pts, dims=dims)
            )

    def test_window_sizes_view(self, plan):
        plan.insert(0, np.array([1.0, 2.0, 3.0, 4.0]))
        sizes = plan.window_sizes()
        assert all(size == 1 for size in sizes.values())


class TestSharingAccounting:
    def test_dva_seeding_reduces_comparisons(self, eleven_query_workload, rng):
        """The Theorem-1 shortcut must never cost more than full scans."""
        pts = rng.random((200, 4)) * 100
        counts = {}
        for assume_dva in (True, False):
            cuboid = build_minmax_cuboid(eleven_query_workload)
            counter = ComparisonCounter()
            plan = SharedCuboidPlan(
                cuboid,
                eleven_query_workload.output_dims,
                counter=counter,
                assume_dva=assume_dva,
            )
            for key in range(len(pts)):
                plan.insert(key, pts[key])
            counts[assume_dva] = counter.comparisons
        assert counts[True] <= counts[False]


@given(seed=st.integers(0, 500), n=st.integers(1, 80))
@settings(max_examples=20, deadline=None)
def test_property_shared_plan_matches_bnl(figure1_workload, seed, n):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 4)) * 100
    cuboid = build_minmax_cuboid(figure1_workload)
    plan = SharedCuboidPlan(cuboid, figure1_workload.output_dims)
    for key in range(n):
        plan.insert(key, pts[key])
    for query in figure1_workload:
        dims = query.preference.positions(figure1_workload.output_dims)
        assert set(plan.current_skyline(query.name)) == set(
            bnl_skyline(pts, dims=dims)
        )
