"""Tests for subspace bitmasks and the full lattice (Definition 6)."""

import pytest

from repro.errors import PlanError
from repro.plan.lattice import SubspaceLattice
from repro.plan.subspace import SubspaceTable


@pytest.fixture
def table():
    return SubspaceTable(("d1", "d2", "d3", "d4"))


class TestSubspaceTable:
    def test_mask_roundtrip(self, table):
        mask = table.mask(["d2", "d4"])
        assert table.names(mask) == ("d2", "d4")
        assert table.positions(mask) == (1, 3)
        assert table.size(mask) == 2

    def test_full_mask(self, table):
        assert table.full_mask == 0b1111
        assert table.names(table.full_mask) == ("d1", "d2", "d3", "d4")

    def test_unknown_dim(self, table):
        with pytest.raises(PlanError):
            table.mask(["zzz"])

    def test_empty_mask_rejected(self, table):
        with pytest.raises(PlanError):
            table.mask([])
        with pytest.raises(PlanError):
            table.names(0)

    def test_is_subset(self, table):
        a = table.mask(["d1"])
        b = table.mask(["d1", "d2"])
        assert table.is_subset(a, b)
        assert not table.is_subset(b, a)

    def test_strict_subsets(self, table):
        mask = table.mask(["d1", "d2", "d3"])
        subs = table.strict_subsets_of(mask)
        assert len(subs) == 6  # 2^3 - 2
        assert all(table.is_subset(s, mask) and s != mask for s in subs)

    def test_immediate_children(self, table):
        mask = table.mask(["d1", "d3"])
        children = table.immediate_children(mask)
        assert sorted(table.names(c) for c in children) == [("d1",), ("d3",)]

    def test_singleton_has_no_children(self, table):
        assert table.immediate_children(table.mask(["d1"])) == []

    def test_label(self, table):
        assert table.label(table.mask(["d1", "d3"])) == "{d1, d3}"

    def test_duplicate_dims_rejected(self):
        with pytest.raises(PlanError):
            SubspaceTable(("a", "a"))


class TestLattice:
    def test_size_is_2_pow_d_minus_1(self, figure1_workload):
        lattice = SubspaceLattice(figure1_workload)
        assert len(lattice) == 15

    def test_qserve_definition6(self, figure1_workload):
        """Example 12: {d2,d3} serves Q2, Q3, Q4; {d2,d4} serves only Q4."""
        lattice = SubspaceLattice(figure1_workload)
        t = lattice.table
        assert lattice.serving_queries(t.mask(["d2", "d3"])) == ("Q2", "Q3", "Q4")
        assert lattice.serving_queries(t.mask(["d2", "d4"])) == ("Q4",)

    def test_singletons_serve_superset_queries(self, figure1_workload):
        lattice = SubspaceLattice(figure1_workload)
        t = lattice.table
        assert lattice.serving_queries(t.mask(["d2"])) == ("Q1", "Q2", "Q3", "Q4")
        assert lattice.serving_queries(t.mask(["d4"])) == ("Q4",)

    def test_full_space_serves_nobody(self, figure1_workload):
        lattice = SubspaceLattice(figure1_workload)
        assert lattice.qserve(lattice.table.full_mask) == 0

    def test_levels_match_popcount(self, figure1_workload):
        lattice = SubspaceLattice(figure1_workload)
        for node in lattice:
            assert node.level == bin(node.mask).count("1") - 1

    def test_unknown_mask(self, figure1_workload):
        lattice = SubspaceLattice(figure1_workload)
        with pytest.raises(PlanError):
            lattice.node(1 << 10)
