"""RegionScheduler: cross-tenant interleaving, fairness, brownout ladder.

Everything here is single-threaded and driven on the scheduler's own
virtual clock (``submit`` + ``step``/``drain``), so ordering assertions
are exact, not races.  The interleaved ``CAQEServer`` mode gets a thin
end-to-end slice at the bottom; the scheduler owns the semantics.
"""

import pytest

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.serving import (
    ANSWERED,
    CANCELLED,
    CAQEServer,
    DEGRADED,
    OUTCOME_BROWNOUT,
    OUTCOME_DEADLINE,
    POLICY_FIFO,
    REASON_BROWNOUT_SHED,
    REASON_BULKHEAD,
    REASON_QUEUE_FULL,
    REASON_SERVER_CLOSED,
    RegionScheduler,
    Rejected,
    TenantSpec,
)

WAIT = 120.0


class CountdownToken:
    """Duck-typed token that cancels after ``n`` region-boundary polls."""

    def __init__(self, n: int) -> None:
        self.remaining = n

    def cancel(self) -> None:
        self.remaining = 0

    def is_cancelled(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 60, 4, selectivity=0.05, seed=17)


@pytest.fixture(scope="module")
def contracts(figure1_workload):
    return {q.name: c2(scale=100.0) for q in figure1_workload}


def _finish_order(sched):
    """Attach a completion recorder; returns the mutable order list."""
    order = []
    sched._on_finish = lambda ticket, outcome, bf: order.append(
        (ticket.ticket_id, outcome.status, outcome.reasons)
    )
    return order


class TestSingleTenantEquivalence:
    def test_bit_identical_to_direct_run(
        self, pair, figure1_workload, contracts
    ):
        direct = CAQE(CAQEConfig()).run(
            pair.left, pair.right, figure1_workload, contracts
        )
        with RegionScheduler(pair.left, pair.right) as sched:
            ticket = sched.submit(figure1_workload, contracts)
            sched.drain()
            outcome = ticket.result(timeout=WAIT)
        assert outcome.status == ANSWERED
        served = outcome.result
        assert served.reported == direct.reported
        assert served.stats.region_trace == direct.stats.region_trace
        assert (
            served.stats.skyline_comparisons
            == direct.stats.skyline_comparisons
        )
        assert served.stats.elapsed == direct.stats.elapsed

    def test_fifo_policy_is_also_bit_identical(
        self, pair, figure1_workload, contracts
    ):
        direct = CAQE(CAQEConfig()).run(
            pair.left, pair.right, figure1_workload, contracts
        )
        with RegionScheduler(
            pair.left, pair.right, policy=POLICY_FIFO
        ) as sched:
            ticket = sched.submit(figure1_workload, contracts)
            sched.drain()
            outcome = ticket.result(timeout=WAIT)
        assert outcome.result.stats.region_trace == direct.stats.region_trace
        assert outcome.result.stats.elapsed == direct.stats.elapsed


class TestAdmissionControl:
    def test_bulkhead_rejects_beyond_tenant_cap(
        self, pair, figure1_workload, contracts
    ):
        with RegionScheduler(pair.left, pair.right) as sched:
            sched.register_tenant("t", max_live=1)
            first = sched.submit(figure1_workload, contracts, tenant="t")
            second = sched.submit(figure1_workload, contracts, tenant="t")
            assert first and not isinstance(first, Rejected)
            assert isinstance(second, Rejected)
            assert second.reason == REASON_BULKHEAD
            assert sched.metrics["rejected_bulkhead"] == 1

    def test_global_queue_limit_rejects(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(server_queue_limit=1)
        with RegionScheduler(pair.left, pair.right, config) as sched:
            sched.register_tenant("a")
            sched.register_tenant("b")
            assert sched.submit(figure1_workload, contracts, tenant="a")
            second = sched.submit(figure1_workload, contracts, tenant="b")
            assert isinstance(second, Rejected)
            assert second.reason == REASON_QUEUE_FULL

    def test_closed_scheduler_sheds_with_reason(
        self, pair, figure1_workload, contracts
    ):
        sched = RegionScheduler(pair.left, pair.right)
        sched.close()
        outcome = sched.submit(figure1_workload, contracts)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == REASON_SERVER_CLOSED

    def test_nonpositive_deadline_is_a_value_error(
        self, pair, figure1_workload, contracts
    ):
        with RegionScheduler(pair.left, pair.right) as sched:
            with pytest.raises(ValueError, match="deadline"):
                sched.submit(figure1_workload, contracts, deadline=0.0)

    def test_reregister_while_live_is_a_value_error(
        self, pair, figure1_workload, contracts
    ):
        with RegionScheduler(pair.left, pair.right) as sched:
            sched.register_tenant("t", weight=2.0)
            sched.submit(figure1_workload, contracts, tenant="t")
            with pytest.raises(ValueError, match="live"):
                sched.register_tenant("t", weight=3.0)
            sched.drain()
            # Idle again: re-registration is allowed.
            spec = sched.register_tenant("t", weight=3.0)
            assert spec.weight == 3.0


class TestBrownoutLadder:
    def test_rung1_defers_low_tiers_until_top_tier_finishes(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(
            tenant_brownout_defer_live=2,
            tenant_brownout_degrade_live=99,
            tenant_brownout_shed_live=99,
        )
        with RegionScheduler(pair.left, pair.right, config) as sched:
            sched.register_tenant("gold", tier=0)
            sched.register_tenant("bronze", tier=2)
            order = _finish_order(sched)
            bronze = sched.submit(figure1_workload, contracts, tenant="bronze")
            gold = sched.submit(figure1_workload, contracts, tenant="gold")
            sched.drain()
        # Gold arrived second but finishes first: rung 1 makes the
        # lower tier ineligible while the live count sits at the
        # defer threshold.
        assert [sid for sid, _, _ in order] == [
            gold.ticket_id,
            bronze.ticket_id,
        ]
        assert all(status == ANSWERED for _, status, _ in order)

    def test_rung2_degrades_youngest_lowest_tier_to_bounds(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(
            tenant_brownout_defer_live=2,
            tenant_brownout_degrade_live=2,
            tenant_brownout_shed_live=99,
        )
        with RegionScheduler(pair.left, pair.right, config) as sched:
            sched.register_tenant("bronze", tier=2, max_live=4)
            first = sched.submit(figure1_workload, contracts, tenant="bronze")
            second = sched.submit(figure1_workload, contracts, tenant="bronze")
            sched.step()
            # The youngest submission was browned out on the first step.
            brown = second.result(timeout=WAIT)
            assert brown.status == DEGRADED
            assert OUTCOME_BROWNOUT in brown.reasons
            assert brown.result is not None
            assert all(
                report.reason == "brownout"
                for reports in brown.result.degraded.values()
                for report in reports
            )
            sched.drain()
            assert first.result(timeout=WAIT).status == ANSWERED
            assert sched.metrics["brownout_degraded"] == 1

    def test_rung2_never_touches_tier0(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(
            tenant_brownout_defer_live=2,
            tenant_brownout_degrade_live=2,
            tenant_brownout_shed_live=99,
        )
        with RegionScheduler(pair.left, pair.right, config) as sched:
            sched.register_tenant("gold", tier=0, max_live=4)
            first = sched.submit(figure1_workload, contracts, tenant="gold")
            second = sched.submit(figure1_workload, contracts, tenant="gold")
            sched.drain()
        assert first.result(timeout=WAIT).status == ANSWERED
        assert second.result(timeout=WAIT).status == ANSWERED
        assert sched.metrics["brownout_degraded"] == 0

    def test_rung3_sheds_new_non_tier0_submissions(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(
            tenant_brownout_defer_live=2,
            tenant_brownout_degrade_live=2,
            tenant_brownout_shed_live=2,
        )
        with RegionScheduler(pair.left, pair.right, config) as sched:
            sched.register_tenant("gold", tier=0, max_live=8)
            sched.register_tenant("bronze", tier=2, max_live=8)
            assert sched.submit(figure1_workload, contracts, tenant="bronze")
            assert sched.submit(figure1_workload, contracts, tenant="bronze")
            shed = sched.submit(figure1_workload, contracts, tenant="bronze")
            assert isinstance(shed, Rejected)
            assert shed.reason == REASON_BROWNOUT_SHED
            # Tier 0 is exempt from shedding at the same live count.
            admitted = sched.submit(figure1_workload, contracts, tenant="gold")
            assert admitted and not isinstance(admitted, Rejected)
            sched.drain()
            assert sched.metrics["rejected_brownout"] == 1

    def test_fifo_policy_disables_the_ladder(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(
            tenant_brownout_defer_live=2,
            tenant_brownout_degrade_live=2,
            tenant_brownout_shed_live=2,
        )
        with RegionScheduler(
            pair.left, pair.right, config, policy=POLICY_FIFO
        ) as sched:
            sched.register_tenant("bronze", tier=2, max_live=8)
            tickets = [
                sched.submit(figure1_workload, contracts, tenant="bronze")
                for _ in range(3)
            ]
            assert all(t and not isinstance(t, Rejected) for t in tickets)
            sched.drain()
        assert all(
            t.result(timeout=WAIT).status == ANSWERED for t in tickets
        )
        assert sched.metrics["brownout_degraded"] == 0


class TestDeadlinesAndCancellation:
    def test_expired_deadline_degrades_with_deadline_reason(
        self, pair, figure1_workload, contracts
    ):
        with RegionScheduler(pair.left, pair.right) as sched:
            ticket = sched.submit(figure1_workload, contracts, deadline=1.0)
            sched.drain()
            outcome = ticket.result(timeout=WAIT)
        assert outcome.status == DEGRADED
        assert OUTCOME_DEADLINE in outcome.reasons
        assert outcome.result is not None
        assert all(
            report.reason == "deadline"
            for reports in outcome.result.degraded.values()
            for report in reports
        )

    def test_cancel_preempts_at_the_next_region_boundary(
        self, pair, figure1_workload, contracts
    ):
        token = CountdownToken(2)
        with RegionScheduler(pair.left, pair.right) as sched:
            ticket = sched.submit(
                figure1_workload, contracts, cancel_token=token
            )
            sched.drain()
            outcome = ticket.result(timeout=WAIT)
        assert outcome.status == CANCELLED
        assert sched.metrics["cancelled"] == 1

    def test_cancelled_before_start(self, pair, figure1_workload, contracts):
        with RegionScheduler(pair.left, pair.right) as sched:
            ticket = sched.submit(figure1_workload, contracts)
            ticket.cancel()
            sched.drain()
            assert ticket.result(timeout=WAIT).status == CANCELLED


class TestFairness:
    def test_deficit_accounting_identity(
        self, pair, figure1_workload, contracts
    ):
        with RegionScheduler(pair.left, pair.right) as sched:
            sched.register_tenant("a", weight=3.0)
            sched.register_tenant("b", weight=1.0)
            sched.submit(figure1_workload, contracts, tenant="a")
            sched.submit(figure1_workload, contracts, tenant="b")
            sched.drain()
            report = sched.tenant_report()
        # Every step charges dt to the served tenant and credits dt
        # across active tenants, so the books must balance.
        total_service = sum(row["service"] for row in report.values())
        total_entitled = sum(row["entitled"] for row in report.values())
        assert total_service > 0.0
        assert total_entitled == pytest.approx(total_service, rel=1e-9)
        assert all(row["live"] == 0.0 for row in report.values())
        for row in report.values():
            assert row["deficit"] == pytest.approx(
                row["entitled"] - row["service"], rel=1e-9
            )

    def test_both_tenants_receive_service(
        self, pair, figure1_workload, contracts
    ):
        with RegionScheduler(pair.left, pair.right) as sched:
            sched.register_tenant("a", weight=1.0)
            sched.register_tenant("b", weight=1.0)
            sched.submit(figure1_workload, contracts, tenant="a")
            sched.submit(figure1_workload, contracts, tenant="b")
            sched.drain()
            report = sched.tenant_report()
        assert report["a"]["service"] > 0.0
        assert report["b"]["service"] > 0.0


class TestDeterminism:
    @staticmethod
    def _fingerprint(pair, workload, contracts, policy):
        sched = RegionScheduler(pair.left, pair.right, policy=policy)
        with sched:
            sched.register_tenant("a", weight=2.0, tier=0)
            sched.register_tenant("b", weight=1.0, tier=1)
            tickets = [
                sched.submit(workload, contracts, tenant=tenant)
                for tenant in ("a", "b", "a", "b")
            ]
            order = _finish_order(sched)
            sched.drain()
            outcomes = [t.result(timeout=WAIT) for t in tickets]
        return (
            tuple(order),
            tuple(o.status for o in outcomes),
            tuple(
                o.result.stats.region_trace
                for o in outcomes
                if o.result is not None
            ),
            sched.clock.now(),
        )

    @pytest.mark.parametrize("policy", ["benefit", "fifo"])
    def test_replay_is_bit_identical(
        self, pair, figure1_workload, contracts, policy
    ):
        first = self._fingerprint(pair, figure1_workload, contracts, policy)
        second = self._fingerprint(pair, figure1_workload, contracts, policy)
        assert first == second

    def test_fifo_serves_in_arrival_order(
        self, pair, figure1_workload, contracts
    ):
        with RegionScheduler(
            pair.left, pair.right, policy=POLICY_FIFO
        ) as sched:
            sched.register_tenant("a")
            sched.register_tenant("b")
            order = _finish_order(sched)
            tickets = [
                sched.submit(figure1_workload, contracts, tenant=tenant)
                for tenant in ("a", "b", "a")
            ]
            sched.drain()
        assert [sid for sid, _, _ in order] == [
            t.ticket_id for t in tickets
        ]


class TestSpecAndConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "weight": 0.0},
            {"name": "t", "weight": float("inf")},
            {"name": "t", "tier": -1},
            {"name": "t", "max_live": 0},
        ],
    )
    def test_tenant_spec_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec(**kwargs)

    def test_unknown_policy_is_a_value_error(self, pair):
        with pytest.raises(ValueError, match="policy"):
            RegionScheduler(pair.left, pair.right, policy="lifo")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"server_mode": "parallel"},
            {"server_queue_limit": 0},
            {"server_workers": 0},
            {"server_breaker_threshold": 0},
            {"server_breaker_cooldown": 0},
            {"server_default_deadline": 0.0},
            {"tenant_default_weight": 0.0},
            {"tenant_default_weight": float("inf")},
            {"tenant_default_tier": -1},
            {"tenant_max_live": 0},
            {"tenant_fairness_pressure": -0.5},
            {"tenant_brownout_defer_live": 0},
            {"tenant_brownout_degrade_live": 0},
            {"tenant_brownout_shed_live": 0},
            # Ladder ordering: defer <= degrade <= shed.
            {
                "tenant_brownout_defer_live": 10,
                "tenant_brownout_degrade_live": 5,
            },
            {
                "tenant_brownout_degrade_live": 10,
                "tenant_brownout_shed_live": 5,
            },
            # Non-integer counts are misconfiguration, not truncation.
            {"tenant_max_live": 2.5},
            {"server_queue_limit": True},
        ],
    )
    def test_config_rejects_bad_server_and_tenant_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CAQEConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"server_mode": "interleaved"},
            {"tenant_default_weight": 0.25},
            {"tenant_fairness_pressure": 0.0},
            {
                "tenant_brownout_defer_live": 3,
                "tenant_brownout_degrade_live": 3,
                "tenant_brownout_shed_live": 3,
            },
        ],
    )
    def test_config_accepts_valid_knobs(self, kwargs):
        CAQEConfig(**kwargs)


class TestInterleavedServer:
    def test_serves_multiple_tenants_end_to_end(
        self, pair, figure1_workload, contracts
    ):
        direct = CAQE(CAQEConfig()).run(
            pair.left, pair.right, figure1_workload, contracts
        )
        config = CAQEConfig(server_mode="interleaved")
        with CAQEServer(pair.left, pair.right, config) as server:
            tickets = [
                server.submit(figure1_workload, contracts, tenant=tenant)
                for tenant in ("a", "b", "a", "b")
            ]
            assert all(t and not isinstance(t, Rejected) for t in tickets)
            outcomes = [t.result(timeout=WAIT) for t in tickets]
        assert all(o.status == ANSWERED for o in outcomes)
        # Shared-plan serving still answers every submission exactly.
        for outcome in outcomes:
            assert outcome.result.reported == direct.reported
        assert server.metrics["answered"] == 4

    def test_shutdown_finishes_admitted_work(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(server_mode="interleaved")
        server = CAQEServer(pair.left, pair.right, config)
        tickets = [
            server.submit(figure1_workload, contracts, tenant="a")
            for _ in range(2)
        ]
        server.shutdown(wait=True)
        for ticket in tickets:
            assert ticket.result(timeout=WAIT).status in (
                ANSWERED,
                DEGRADED,
            )
        rejected = server.submit(figure1_workload, contracts)
        assert isinstance(rejected, Rejected)
        assert rejected.reason == REASON_SERVER_CLOSED
