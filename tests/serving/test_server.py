"""CAQEServer: admission, deadlines, cancellation, shedding, breakers.

Concurrency here is made deterministic with two duck-typed cancel
tokens: a counting token that fires at an exact region boundary, and a
gate token that parks the worker thread inside a run until the test
releases it (so queue occupancy during overload is exact, not a race).
"""

import threading

import pytest

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.query import JoinCondition, Preference, SkylineJoinQuery, add
from repro.query.workload import Workload
from repro.robustness.faults import FaultConfig, FaultPlan
from repro.robustness.recovery import RetryPolicy
from repro.serving import (
    ANSWERED,
    CANCELLED,
    CAQEServer,
    CancellationToken,
    CircuitBreaker,
    DEGRADED,
    FAILED,
    OPEN,
    REASON_CIRCUIT_OPEN,
    REASON_QUEUE_FULL,
    REASON_SERVER_CLOSED,
    Rejected,
    workload_signature,
)

WAIT = 120.0  # generous terminal-state timeout; nothing here should hang


class CountdownToken:
    """Duck-typed token that cancels after ``n`` region-boundary polls."""

    def __init__(self, n: int) -> None:
        self.remaining = n

    def cancel(self) -> None:  # Ticket.cancel() delegates here
        self.remaining = 0

    def is_cancelled(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


class GateToken:
    """Duck-typed token that parks the run until the gate opens."""

    def __init__(self) -> None:
        self._gate = threading.Event()

    def open(self) -> None:
        self._gate.set()

    def cancel(self) -> None:
        self._gate.set()

    def is_cancelled(self) -> bool:
        self._gate.wait(timeout=WAIT)
        return False


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 60, 4, selectivity=0.05, seed=17)


@pytest.fixture(scope="module")
def contracts(figure1_workload):
    return {q.name: c2(scale=100.0) for q in figure1_workload}


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=5)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state != OPEN
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state != OPEN

    def test_cooldown_events_admit_a_half_open_trial(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.admit()  # cooldown 2 -> 1
        assert breaker.admit()  # cooldown hits 0: half-open trial
        assert not breaker.admit()  # everything else shed during the trial

    def test_trial_success_closes_trial_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.admit()
        assert breaker.admit()  # cooldown exhausted: half-open trial
        breaker.record_success()
        assert breaker.admit()  # closed again

        breaker.record_failure()
        assert not breaker.admit()
        assert breaker.admit()
        breaker.record_failure()  # the trial itself failed
        assert breaker.state == OPEN
        assert not breaker.admit()  # fresh cooldown started


class TestServedRuns:
    def test_answer_matches_a_direct_engine_run(
        self, pair, figure1_workload, contracts
    ):
        direct = CAQE(CAQEConfig()).run(
            pair.left, pair.right, figure1_workload, contracts
        )
        with CAQEServer(pair.left, pair.right) as server:
            ticket = server.submit(figure1_workload, contracts)
            assert ticket and not isinstance(ticket, Rejected)
            outcome = ticket.result(timeout=WAIT)
        assert outcome.status == ANSWERED and outcome.ok
        assert outcome.result is not None
        assert outcome.result.reported == direct.reported
        assert (
            outcome.result.stats.region_trace == direct.stats.region_trace
        )
        assert outcome.result.stats.elapsed == direct.stats.elapsed

    def test_deadline_degrades_instead_of_running_forever(
        self, pair, figure1_workload, contracts
    ):
        with CAQEServer(pair.left, pair.right) as server:
            ticket = server.submit(
                figure1_workload, contracts, deadline=2_000.0
            )
            outcome = ticket.result(timeout=WAIT)
        assert outcome.status == DEGRADED and outcome.ok
        assert outcome.result is not None
        assert any(outcome.result.degraded.values())
        assert server.metrics["degraded"] == 1

    def test_cancel_before_start(self, pair, figure1_workload, contracts):
        token = CancellationToken()
        token.cancel()
        with CAQEServer(pair.left, pair.right) as server:
            ticket = server.submit(
                figure1_workload, contracts, cancel_token=token
            )
            outcome = ticket.result(timeout=WAIT)
        assert outcome.status == CANCELLED
        assert not outcome.ok
        assert outcome.result is None

    def test_cancel_mid_run_at_a_region_boundary(
        self, pair, figure1_workload, contracts
    ):
        with CAQEServer(pair.left, pair.right) as server:
            ticket = server.submit(
                figure1_workload, contracts, cancel_token=CountdownToken(5)
            )
            outcome = ticket.result(timeout=WAIT)
        assert outcome.status == CANCELLED
        assert "region boundary" in outcome.error
        assert server.metrics["cancelled"] == 1

    def test_rejected_is_falsy_and_ticket_is_truthy(
        self, pair, figure1_workload, contracts
    ):
        with CAQEServer(pair.left, pair.right) as server:
            ticket = server.submit(figure1_workload, contracts)
            assert bool(ticket)
            ticket.result(timeout=WAIT)
        assert not Rejected(REASON_QUEUE_FULL)

    def test_closed_server_sheds_with_explicit_reason(
        self, pair, figure1_workload, contracts
    ):
        server = CAQEServer(pair.left, pair.right)
        server.shutdown()
        rejection = server.submit(figure1_workload, contracts)
        assert isinstance(rejection, Rejected)
        assert rejection.reason == REASON_SERVER_CLOSED


class TestOverloadShedding:
    def test_four_x_overload_sheds_explicitly_and_terminates(
        self, pair, figure1_workload, contracts
    ):
        config = CAQEConfig(server_workers=1, server_queue_limit=2)
        with CAQEServer(pair.left, pair.right, config) as server:
            gate = GateToken()
            running = server.submit(
                figure1_workload, contracts, cancel_token=gate
            )
            assert running
            # Wait until the worker has actually dequeued the gated run,
            # then fill the admission queue to capacity.
            deadline = threading.Event()
            while server._queue.qsize() > 0:
                assert not deadline.wait(0.01)
            queued = [
                server.submit(figure1_workload, contracts) for _ in range(2)
            ]
            assert all(queued)

            # 4x the queue capacity on top: every one must shed with an
            # explicit queue_full rejection, never block or error.
            rejections = [
                server.submit(figure1_workload, contracts) for _ in range(8)
            ]
            assert all(isinstance(r, Rejected) for r in rejections)
            assert {r.reason for r in rejections} == {REASON_QUEUE_FULL}
            assert server.metrics["rejected_queue_full"] == 8

            gate.open()
            outcomes = [t.result(timeout=WAIT) for t in [running, *queued]]
        assert [o.status for o in outcomes] == [ANSWERED] * 3
        assert server.metrics["admitted"] == 3
        assert server.metrics["submitted"] == 11


class TestCircuitBreakerServing:
    def _toxic_server(self, pair) -> CAQEServer:
        """Every run quarantines all regions -> breaker failures."""
        return CAQEServer(
            pair.left,
            pair.right,
            CAQEConfig(
                enable_recovery=True,
                retry_policy=RetryPolicy(max_attempts=1),
                fault_plan=FaultPlan(
                    FaultConfig(seed=5, persistent_failure_rate=1.0)
                ),
                server_workers=1,
                server_breaker_threshold=2,
                server_breaker_cooldown=2,
            ),
        )

    def test_quarantine_heavy_workload_trips_its_breaker(
        self, pair, figure1_workload, contracts
    ):
        with self._toxic_server(pair) as server:
            for _ in range(2):  # threshold
                ticket = server.submit(figure1_workload, contracts)
                outcome = ticket.result(timeout=WAIT)
                assert outcome.status == DEGRADED
            rejection = server.submit(figure1_workload, contracts)
            assert isinstance(rejection, Rejected)
            assert rejection.reason == REASON_CIRCUIT_OPEN
            assert server.metrics["rejected_circuit_open"] == 1

    def test_cooldown_admits_a_half_open_trial_that_reopens(
        self, pair, figure1_workload, contracts
    ):
        with self._toxic_server(pair) as server:
            for _ in range(2):
                server.submit(figure1_workload, contracts).result(timeout=WAIT)
            # cooldown=2: one shed submission, then a half-open trial.
            assert isinstance(
                server.submit(figure1_workload, contracts), Rejected
            )
            trial = server.submit(figure1_workload, contracts)
            assert trial
            assert trial.result(timeout=WAIT).status == DEGRADED
            # The trial quarantined again -> breaker re-opened.
            rejection = server.submit(figure1_workload, contracts)
            assert isinstance(rejection, Rejected)
            assert rejection.reason == REASON_CIRCUIT_OPEN

    def test_breakers_are_per_workload_signature(
        self, pair, figure1_workload, contracts
    ):
        jc = JoinCondition.on("jc1", name="JC1")
        fns = (add("m1", "m1", "d1"), add("m2", "m2", "d2"))
        other = Workload(
            [SkylineJoinQuery("QX", jc, fns, Preference.over("d1", "d2"))]
        )
        assert workload_signature(other) != workload_signature(
            figure1_workload
        )
        with self._toxic_server(pair) as server:
            for _ in range(2):
                server.submit(figure1_workload, contracts).result(timeout=WAIT)
            assert isinstance(
                server.submit(figure1_workload, contracts), Rejected
            )
            # A different workload is judged by its own breaker.
            ticket = server.submit(
                other, {"QX": c2(scale=100.0)}
            )
            assert ticket
            ticket.result(timeout=WAIT)

    def test_cancellation_does_not_count_against_the_breaker(
        self, pair, figure1_workload, contracts
    ):
        with CAQEServer(
            pair.left,
            pair.right,
            CAQEConfig(server_workers=1, server_breaker_threshold=1),
        ) as server:
            ticket = server.submit(
                figure1_workload, contracts, cancel_token=CountdownToken(2)
            )
            assert ticket.result(timeout=WAIT).status == CANCELLED
            breaker = server._breakers[workload_signature(figure1_workload)]
            assert breaker.consecutive_failures == 0
            follow_up = server.submit(figure1_workload, contracts)
            assert follow_up
            assert follow_up.result(timeout=WAIT).status == ANSWERED
