"""Property tests: breaker state machine + region-boundary preemption.

* :class:`CircuitBreaker` is exercised with random event sequences
  against an independent model of its CLOSED/OPEN/HALF_OPEN contract.
* Cancellation is exercised with a counting token across workers
  ∈ {0, 2}: a run preempted after ``n`` region-boundary polls must have
  processed a bit-identical *prefix* of the uncancelled run's region
  trace, regardless of the worker count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.errors import QueryCancelled
from repro.parallel import RegionPool
from repro.serving import CLOSED, CancellationToken, CircuitBreaker, HALF_OPEN, OPEN


class BreakerModel:
    """Independent restatement of the breaker's documented contract."""

    def __init__(self, threshold: int, cooldown: int) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.streak = 0
        self.cooldown_left = 0

    def admit(self) -> bool:
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            return False  # one trial in flight, shed the rest
        self.cooldown_left -= 1
        if self.cooldown_left <= 0:
            self.state = HALF_OPEN
            return True
        return False

    def record_success(self) -> None:
        self.state = CLOSED
        self.streak = 0

    def record_failure(self) -> None:
        self.streak += 1
        if self.state == HALF_OPEN or self.streak >= self.threshold:
            self.state = OPEN
            self.cooldown_left = self.cooldown


class TestCircuitBreakerProperties:
    @given(
        threshold=st.integers(1, 5),
        cooldown=st.integers(1, 6),
        events=st.lists(
            st.sampled_from(["admit", "success", "failure"]), max_size=60
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_the_reference_model(self, threshold, cooldown, events):
        breaker = CircuitBreaker(threshold=threshold, cooldown=cooldown)
        model = BreakerModel(threshold, cooldown)
        for event in events:
            if event == "admit":
                assert breaker.admit() == model.admit()
            elif event == "success":
                breaker.record_success()
                model.record_success()
            else:
                breaker.record_failure()
                model.record_failure()
            assert breaker.state == model.state

    @given(
        threshold=st.integers(1, 5),
        prefix=st.lists(
            st.sampled_from(["admit", "success", "failure"]), max_size=40
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_closed_breaker_always_admits(self, threshold, prefix):
        breaker = CircuitBreaker(threshold=threshold, cooldown=3)
        for event in prefix:
            if event == "admit":
                breaker.admit()
            elif event == "success":
                breaker.record_success()
            else:
                breaker.record_failure()
        breaker.record_success()  # any success closes the breaker
        assert breaker.state == CLOSED
        assert breaker.admit()

    @given(cooldown=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_open_breaker_admits_exactly_one_trial_after_cooldown(
        self, cooldown
    ):
        breaker = CircuitBreaker(threshold=1, cooldown=cooldown)
        breaker.record_failure()
        assert breaker.state == OPEN
        decisions = [breaker.admit() for _ in range(cooldown + 3)]
        assert decisions.count(True) == 1
        assert decisions.index(True) == cooldown - 1
        assert breaker.state == HALF_OPEN


class CountdownToken:
    """Duck-typed token that cancels after ``n`` region-boundary polls."""

    def __init__(self, n: int) -> None:
        self.remaining = n

    def cancel(self) -> None:
        self.remaining = 0

    def is_cancelled(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 60, 4, selectivity=0.05, seed=17)


@pytest.fixture(scope="module")
def serving_fixture(pair, figure1_workload):
    contracts = {q.name: c2(scale=100.0) for q in figure1_workload}
    full = CAQE(CAQEConfig()).run(
        pair.left, pair.right, figure1_workload, contracts
    )
    return pair, figure1_workload, contracts, full


@pytest.fixture(scope="module")
def shared_pool(pair):
    with RegionPool(pair.left, pair.right, workers=2) as pool:
        yield pool


class TestCancellationPreemption:
    def test_token_is_sticky_and_thread_safe_api(self):
        token = CancellationToken()
        assert not token.is_cancelled()
        token.cancel()
        assert token.is_cancelled()
        assert token.is_cancelled()  # stays cancelled

    @pytest.mark.parametrize("workers", [0, 2])
    @given(n=st.integers(0, 12))
    @settings(max_examples=10, deadline=None)
    def test_preempts_on_a_bit_identical_region_prefix(
        self, serving_fixture, shared_pool, workers, n
    ):
        pair, workload, contracts, full = serving_fixture
        full_trace = full.stats.region_trace
        engine = CAQE(CAQEConfig(workers=workers))
        pool = shared_pool if workers else None
        token = CountdownToken(n)
        if n >= len(full_trace):
            result = engine.run(
                pair.left,
                pair.right,
                workload,
                contracts,
                cancel_token=token,
                pool=pool,
            )
            assert result.stats.region_trace == full_trace
            assert result.reported == full.reported
            return
        from repro.core.stats import ExecutionStats

        stats = ExecutionStats.with_cost_model(engine.config.cost_model)
        with pytest.raises(QueryCancelled):
            engine.run(
                pair.left,
                pair.right,
                workload,
                contracts,
                stats,
                cancel_token=token,
                pool=pool,
            )
        trace = stats.region_trace
        # Preemption lands exactly at a region boundary: what ran is a
        # bit-identical prefix of the uncancelled run, never a partial
        # region, and never more regions than the token allowed.
        assert len(trace) <= n
        assert tuple(trace) == tuple(full_trace[: len(trace)])
