"""Tests for contract introspection helpers."""

import numpy as np
import pytest

from repro.contracts import ResultLog, c1, c2, c3, c4, c5
from repro.contracts.analysis import (
    contract_curve,
    delivery_profile,
    ideal_pacing,
    ideal_satisfaction,
    regret,
)
from repro.errors import ContractError


class TestContractCurve:
    def test_deadline_curve_is_a_step(self):
        ts, u = contract_curve(c1(10.0), horizon=20.0, samples=41)
        assert u[0] == 1.0 and u[-1] == 0.0
        assert set(np.unique(u)) == {0.0, 1.0}

    def test_decay_curve_is_nonincreasing(self):
        for contract in (c2(), c3(5.0)):
            _, u = contract_curve(contract, horizon=50.0)
            assert np.all(np.diff(u) <= 1e-9), contract.name

    def test_hybrid_single_tuple_curve_bounded(self):
        """C5's single-tuple view multiplies a *negative* below-quota
        cardinality term by a decaying time factor — bounded, not monotone."""
        _, u = contract_curve(c5(0.1, 1.0), horizon=50.0)
        assert np.all(u >= -1.0) and np.all(u <= 1.0)

    def test_validation(self):
        with pytest.raises(ContractError):
            contract_curve(c1(1.0), horizon=0.0)
        with pytest.raises(ContractError):
            contract_curve(c1(1.0), horizon=10.0, samples=1)


class TestIdealPacing:
    def test_time_contract_delivers_immediately(self):
        schedule = ideal_pacing(c1(10.0), 5, horizon=100.0)
        np.testing.assert_array_equal(schedule, np.zeros(5))

    def test_quota_contract_paces(self):
        contract = c4(fraction=0.25, interval=2.0)
        schedule = ideal_pacing(contract, 8, horizon=100.0)
        # 2 per interval across 4 intervals, at midpoints.
        assert len(schedule) == 8
        _, counts = np.unique(schedule, return_counts=True)
        assert counts.tolist() == [2, 2, 2, 2]

    def test_zero_results(self):
        assert len(ideal_pacing(c1(1.0), 0, 10.0)) == 0

    def test_ideal_satisfaction_is_max(self):
        for contract in (c1(10.0), c4(0.1, 1.0)):
            assert ideal_satisfaction(contract, 20, 100.0) == 1.0

    def test_log_decay_ideal_below_one_is_fine(self):
        value = ideal_satisfaction(c2(scale=0.001), 10, 100.0)
        assert 0.0 <= value <= 1.0


class TestDeliveryProfile:
    def test_counts(self):
        log = ResultLog("Q")
        log.report_batch(["a", "b"], 0.5)
        log.report_batch(["c"], 2.5)
        np.testing.assert_array_equal(
            delivery_profile(log, interval=1.0), [2, 0, 1]
        )

    def test_padding_to_horizon(self):
        log = ResultLog("Q")
        log.report("a", 0.5)
        profile = delivery_profile(log, interval=1.0, horizon=5.0)
        assert len(profile) == 5 and profile.sum() == 1

    def test_empty_log(self):
        profile = delivery_profile(ResultLog("Q"), 1.0, horizon=3.0)
        np.testing.assert_array_equal(profile, [0, 0, 0])

    def test_invalid_interval(self):
        with pytest.raises(ContractError):
            delivery_profile(ResultLog("Q"), 0.0)


class TestRegret:
    def test_perfect_execution_zero_regret(self):
        log = ResultLog("Q")
        log.report_batch(range(5), 0.0)
        assert regret(c1(10.0), log) == 0.0

    def test_late_execution_positive_regret(self):
        log = ResultLog("Q")
        log.report_batch(range(5), 50.0)
        assert regret(c1(10.0), log, horizon=100.0) == 1.0

    def test_bounded(self):
        log = ResultLog("Q")
        log.report_batch(range(3), 7.0)
        for contract in (c1(10.0), c2(), c4(0.1, 2.0), c5(0.1, 2.0)):
            assert 0.0 <= regret(contract, log, horizon=20.0) <= 1.0
