"""Tests for hybrid contracts (Equation 5, C5) and the Table 2 presets."""

import numpy as np
import pytest

from repro.contracts import (
    CONTRACT_CLASSES,
    DeadlineContract,
    HybridContract,
    InverseTimeContract,
    LogDecayContract,
    PercentPerIntervalContract,
    SoftDeadlineContract,
    c1,
    c2,
    c3,
    c4,
    c5,
    make,
)
from repro.errors import ContractError


class TestInverseTime:
    def test_clamped_early(self):
        c = InverseTimeContract()
        assert c.utility_at(0.5) == 1.0

    def test_inverse_tail(self):
        c = InverseTimeContract()
        assert c.utility_at(4.0) == pytest.approx(0.25)

    def test_scale(self):
        c = InverseTimeContract(scale=10.0)
        assert c.utility_at(40.0) == pytest.approx(0.25)


class TestHybrid:
    def test_equation5_product(self):
        """Example 11 / Equation 5: combined utility is the product."""
        card = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        time = DeadlineContract(5.0)
        hybrid = HybridContract(card, time)
        ts = np.array([0.5] * 10 + [6.5] * 10)  # two full-quota intervals
        u = hybrid.tuple_utilities(ts, 100)
        u_card = card.tuple_utilities(ts, 100)
        u_time = time.tuple_utilities(ts, 100)
        np.testing.assert_allclose(u, u_card * u_time)

    def test_late_batch_has_zero_utility_under_deadline(self):
        hybrid = HybridContract(
            PercentPerIntervalContract(0.1, 1.0), DeadlineContract(5.0)
        )
        assert hybrid.batch_utility(10.0, 50, 100) == 0.0

    def test_batch_utilities_vector_matches_scalar(self):
        hybrid = c5(0.1, 1.0)
        times = np.array([0.5, 3.0, 50.0])
        batches = np.array([10.0, 2.0, 30.0])
        vec = hybrid.batch_utilities(times, batches, 100)
        for i in range(3):
            assert vec[i] == pytest.approx(
                hybrid.batch_utility(times[i], batches[i], 100), abs=1e-12
            )

    def test_rejects_non_contracts(self):
        with pytest.raises(ContractError):
            HybridContract("not a contract", DeadlineContract(1.0))  # type: ignore


class TestPresets:
    def test_c1_type(self):
        assert isinstance(c1(10.0), DeadlineContract)

    def test_c2_type(self):
        assert isinstance(c2(), LogDecayContract)

    def test_c3_type(self):
        assert isinstance(c3(10.0), SoftDeadlineContract)

    def test_c4_type_and_params(self):
        contract = c4(fraction=0.2, interval=3.0)
        assert isinstance(contract, PercentPerIntervalContract)
        assert contract.fraction == 0.2 and contract.interval == 3.0

    def test_c5_is_hybrid_of_c4_and_inverse_time(self):
        contract = c5(0.1, 2.0, time_scale=5.0)
        assert isinstance(contract, HybridContract)
        assert isinstance(contract.cardinality, PercentPerIntervalContract)
        assert isinstance(contract.time, InverseTimeContract)

    @pytest.mark.parametrize("name", CONTRACT_CLASSES)
    def test_make_builds_each_class(self, name):
        contract = make(name, deadline=7.0, interval=2.0, fraction=0.25)
        assert contract.name.startswith(name[:2]) or name in contract.name

    def test_make_unknown_raises(self):
        with pytest.raises(ContractError):
            make("C9")

    def test_table2_c5_time_component_is_1_over_ts(self):
        """Table 2: C5's time factor is 1/ts (clamped)."""
        contract = c5(0.1, 1.0)
        # One full-quota interval at ts=4: card=1, time=1/4.
        u = contract.tuple_utilities(np.full(10, 4.0), 100)
        np.testing.assert_allclose(u, 0.25)
