"""Tests for cardinality-based contracts (C4, Equations 3-4, Examples 9-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts.cardinality import (
    PercentPerIntervalContract,
    RateContract,
    interval_counts,
)
from repro.errors import ContractError


class TestIntervalCounts:
    def test_basic_bucketing(self):
        idx, counts = interval_counts(np.array([0.5, 0.9, 1.5, 3.2]), 1.0)
        np.testing.assert_array_equal(idx, [0, 0, 1, 3])
        np.testing.assert_array_equal(counts, [2, 1, 0, 1])

    def test_zero_goes_to_first_interval(self):
        idx, _ = interval_counts(np.array([0.0]), 1.0)
        assert idx[0] == 0

    def test_boundary_belongs_to_earlier_interval(self):
        idx, _ = interval_counts(np.array([1.0, 2.0]), 1.0)
        np.testing.assert_array_equal(idx, [0, 1])

    def test_empty(self):
        idx, counts = interval_counts(np.array([]), 1.0)
        assert len(idx) == 0 and len(counts) == 0


class TestPercentPerInterval:
    def test_example9_meeting_quota(self):
        """Equation 3: intervals delivering >= 10% of N score 1 per tuple."""
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        # 2 of N=20 per interval = exactly 10%.
        ts = np.array([0.5, 0.6, 1.5, 1.6])
        np.testing.assert_array_equal(c.tuple_utilities(ts, 20), [1.0] * 4)

    def test_example9_missing_quota_is_negative(self):
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        # 1 of N=20 in the interval: ratio 0.05 -> 1/2 - 1 = -0.5.
        u = c.tuple_utilities(np.array([0.5]), 20)
        assert u[0] == pytest.approx(-0.5)

    def test_pacing_gives_full_satisfaction(self):
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        # 10% of 20 results in each of 10 intervals.
        ts = np.concatenate([np.full(2, t + 0.5) for t in range(10)])
        assert c.satisfaction(ts, 20) == 1.0

    def test_blocking_dump_scores_poorly(self):
        """Everything delivered in interval 20: 19 empty intervals first,
        so the average interval score collapses to ~1/20."""
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        ts = np.full(20, 19.5)
        assert 0.0 < c.satisfaction(ts, 20) <= 0.06

    def test_instant_dump_scores_one(self):
        """Delivering 100% in the first interval trivially meets the quota."""
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        assert c.satisfaction(np.full(20, 0.5), 20) == 1.0

    def test_satisfaction_zero_total(self):
        c = PercentPerIntervalContract()
        assert c.satisfaction(np.array([]), 0) == 1.0
        assert c.satisfaction(np.array([]), 10) == 0.0

    def test_batch_utility_meets_quota(self):
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        assert c.batch_utility(3.0, 10, 100) == pytest.approx(10.0)

    def test_batch_utility_below_quota_clamped_to_zero(self):
        """The optimizer's planning view clamps Equation 3's negative
        branch (delivering a small batch must never look worse than
        delivering nothing); pScore keeps the literal signed form."""
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        assert c.batch_utility(3.0, 5, 100) == 0.0
        assert c.pscore(np.full(5, 3.0), 100) == pytest.approx(5 * (-0.5))

    def test_batch_utilities_vector_matches_scalar(self):
        c = PercentPerIntervalContract(fraction=0.1, interval=1.0)
        times = np.array([1.0, 2.0, 3.0])
        batches = np.array([10.0, 5.0, 0.0])
        vec = c.batch_utilities(times, batches, 100)
        for i in range(3):
            assert vec[i] == pytest.approx(c.batch_utility(times[i], batches[i], 100))

    @pytest.mark.parametrize("fraction", [0.0, 1.5, -0.1])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(ContractError):
            PercentPerIntervalContract(fraction=fraction)

    def test_invalid_interval(self):
        with pytest.raises(ContractError):
            PercentPerIntervalContract(interval=0.0)


class TestRateContract:
    def test_example10_at_rate(self):
        """Equation 4: exactly 5 tuples/interval is ideal."""
        c = RateContract(rate=5.0, interval=1.0)
        ts = np.full(5, 0.5)
        np.testing.assert_array_equal(c.tuple_utilities(ts, 5), [1.0] * 5)

    def test_example10_overload_penalised(self):
        c = RateContract(rate=5.0, interval=1.0)
        ts = np.full(10, 0.5)  # 10 tuples in one interval: utility 5/10
        np.testing.assert_allclose(c.tuple_utilities(ts, 10), 0.5)

    def test_example10_starvation_penalised(self):
        c = RateContract(rate=5.0, interval=1.0)
        u = c.tuple_utilities(np.array([0.5]), 1)  # 1 of 5: utility 1/5
        assert u[0] == pytest.approx(0.2)

    def test_ideal_intervals(self):
        c = RateContract(rate=5.0)
        assert c.ideal_intervals(12) == 3
        assert c.ideal_intervals(0) == 0

    def test_batch_utilities_matches_scalar(self):
        c = RateContract(rate=5.0)
        for b in (0.0, 3.0, 5.0, 12.0):
            assert c.batch_utilities(np.array([1.0]), np.array([b]), 10)[
                0
            ] == pytest.approx(c.batch_utility(1.0, b, 10))

    def test_invalid_rate(self):
        with pytest.raises(ContractError):
            RateContract(rate=0.0)


@given(
    ts=st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50),
    total=st.integers(1, 100),
)
@settings(max_examples=60, deadline=None)
def test_property_c4_utilities_bounded(ts, total):
    c = PercentPerIntervalContract(fraction=0.1, interval=5.0)
    u = c.tuple_utilities(np.asarray(ts), total)
    assert np.all(u <= 1.0) and np.all(u >= -1.0)
    assert 0.0 <= c.satisfaction(np.asarray(ts), total) <= 1.0


@given(ts=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_property_rate_utilities_bounded(ts):
    c = RateContract(rate=3.0, interval=2.0)
    u = c.tuple_utilities(np.asarray(ts), len(ts))
    assert np.all(u >= 0.0) and np.all(u <= 1.0)
