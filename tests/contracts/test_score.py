"""Tests for result logs, pScore (Equations 6-7), and the runtime tracker."""

import numpy as np
import pytest

from repro.contracts import (
    DeadlineContract,
    ResultLog,
    SatisfactionTracker,
    c1,
    c2,
    pscore,
    satisfaction,
    score_workload,
)
from repro.errors import ContractError
from repro.query import subspace_workload


class TestResultLog:
    def test_report_and_read(self):
        log = ResultLog("Q1")
        log.report(("a", 1), 1.0)
        log.report(("b", 2), 2.5)
        assert len(log) == 2
        assert log.keys == [("a", 1), ("b", 2)]
        np.testing.assert_array_equal(log.timestamps, [1.0, 2.5])
        assert log.completion_time == 2.5

    def test_rejects_time_travel(self):
        log = ResultLog("Q1")
        log.report("a", 5.0)
        with pytest.raises(ContractError, match="non-monotonic"):
            log.report("b", 4.0)

    def test_batch(self):
        log = ResultLog("Q1")
        log.report_batch(["a", "b", "c"], 3.0)
        assert len(log) == 3
        assert log.completion_time == 3.0

    def test_empty(self):
        log = ResultLog("Q1")
        assert len(log) == 0 and log.completion_time == 0.0


class TestPscore:
    def test_equation7_sums_utilities(self):
        log = ResultLog("Q")
        log.report_batch(range(3), 1.0)   # inside deadline
        log.report_batch(range(3, 5), 20.0)  # outside
        assert pscore(log, DeadlineContract(10.0)) == 3.0

    def test_total_defaults_to_log_size(self):
        log = ResultLog("Q")
        log.report_batch(range(4), 1.0)
        assert pscore(log, c1(10.0)) == 4.0

    def test_satisfaction_normalised(self):
        log = ResultLog("Q")
        log.report_batch(range(2), 1.0)
        log.report_batch(range(2, 4), 20.0)
        assert satisfaction(log, DeadlineContract(10.0)) == 0.5


class TestScoreWorkload:
    def test_scores_all_queries(self):
        wl = subspace_workload(3, priority_scheme="uniform")
        contracts = {q.name: c1(10.0) for q in wl}
        logs = {}
        for q in wl:
            log = ResultLog(q.name)
            log.report_batch(range(2), 5.0)
            logs[q.name] = log
        score = score_workload(wl, contracts, logs)
        assert set(score.per_query_satisfaction) == set(wl.names)
        assert score.average_satisfaction == 1.0
        assert score.total_pscore == 2.0 * len(wl)

    def test_missing_log_counts_as_empty(self):
        wl = subspace_workload(2)
        contracts = {q.name: c1(10.0) for q in wl}
        score = score_workload(wl, contracts, logs={}, totals={"Q1": 5.0})
        assert score.per_query_pscore["Q1"] == 0.0
        assert score.per_query_satisfaction["Q1"] == 0.0

    def test_missing_contract_raises(self):
        wl = subspace_workload(2)
        with pytest.raises(ContractError, match="no contract"):
            score_workload(wl, {}, logs={})


class TestSatisfactionTracker:
    def test_runtime_metric_updates(self):
        tracker = SatisfactionTracker(
            {"Q1": c1(10.0), "Q2": c1(10.0)},
            {"Q1": 10.0, "Q2": 10.0},
        )
        assert tracker.runtime_satisfaction("Q1") == 0.0
        tracker.record("Q1", ["a", "b"], 2.0)
        assert tracker.runtime_satisfaction("Q1") == 1.0
        assert tracker.runtime_satisfaction("Q2") == 0.0

    def test_snapshot(self):
        tracker = SatisfactionTracker({"Q1": c2()}, {"Q1": 5.0})
        tracker.record("Q1", ["x"], 1.0)
        snap = tracker.snapshot()
        assert set(snap) == {"Q1"}
        assert 0.0 <= snap["Q1"] <= 1.0

    def test_reported_count_and_log(self):
        tracker = SatisfactionTracker({"Q1": c1(5.0)}, {"Q1": 3.0})
        tracker.record("Q1", ["a"], 1.0)
        tracker.record("Q1", ["b"], 2.0)
        assert tracker.reported_count("Q1") == 2
        assert tracker.log("Q1").keys == ["a", "b"]
