"""Tests for time-based contracts (C1-C3, Equations 1-2, Examples 7-8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts.time_based import (
    DeadlineContract,
    LogDecayContract,
    PiecewiseTimeContract,
    SoftDeadlineContract,
)
from repro.errors import ContractError


class TestDeadline:
    def test_example7_step_function(self):
        """Example 7: all tuples after 30 minutes are useless."""
        c = DeadlineContract(30.0)
        u = c.tuple_utilities(np.array([0.0, 29.9, 30.0, 30.1, 100.0]), 10)
        np.testing.assert_array_equal(u, [1.0, 1.0, 1.0, 0.0, 0.0])

    def test_pscore_counts_only_in_deadline(self):
        c = DeadlineContract(10.0)
        assert c.pscore(np.array([1.0, 5.0, 15.0]), 3) == 2.0

    def test_invalid_deadline(self):
        with pytest.raises(ContractError):
            DeadlineContract(0.0)

    def test_name_mentions_parameter(self):
        assert "10" in DeadlineContract(10.0).name


class TestLogDecay:
    def test_clamped_to_one_early(self):
        c = LogDecayContract()
        assert c.utility_at(0.5) == 1.0
        assert c.utility_at(2.0) == 1.0  # 1/log(2) > 1, clamped

    def test_decays(self):
        c = LogDecayContract()
        assert c.utility_at(10.0) > c.utility_at(100.0) > c.utility_at(10000.0)

    def test_matches_formula_beyond_e(self):
        c = LogDecayContract()
        assert c.utility_at(100.0) == pytest.approx(1.0 / np.log(100.0))

    def test_scale_rescales_time_axis(self):
        plain, scaled = LogDecayContract(), LogDecayContract(scale=10.0)
        assert scaled.utility_at(1000.0) == pytest.approx(plain.utility_at(100.0))

    def test_invalid_scale(self):
        with pytest.raises(ContractError):
            LogDecayContract(0.0)


class TestSoftDeadline:
    def test_full_before_deadline(self):
        c = SoftDeadlineContract(10.0)
        np.testing.assert_array_equal(
            c.tuple_utilities(np.array([0.0, 10.0]), 5), [1.0, 1.0]
        )

    def test_paper_example_12s_gives_half(self):
        """§7.2: under C3 with t=10, a tuple at 12 s has utility 0.5."""
        c = SoftDeadlineContract(10.0)
        assert c.utility_at(12.0) == pytest.approx(0.5)

    def test_hyperbolic_tail(self):
        c = SoftDeadlineContract(10.0)
        assert c.utility_at(20.0) == pytest.approx(0.1)
        assert c.utility_at(110.0) == pytest.approx(0.01)

    def test_tail_clamped_to_one(self):
        c = SoftDeadlineContract(10.0)
        assert c.utility_at(10.5) == 1.0  # 1/0.5 = 2, clamped


class TestPiecewise:
    def test_example8_shape(self):
        """Example 8: 1 until 5, 0.8 until 30, log decay after."""
        c = PiecewiseTimeContract(
            steps=[(5.0, 1.0), (30.0, 0.8)],
            tail=lambda ts: 1.0 / np.log(np.maximum(ts, 1.001)),
        )
        u = c.tuple_utilities(np.array([1.0, 5.0, 10.0, 30.0, 100.0]), 1)
        assert u[0] == 1.0 and u[1] == 1.0
        assert u[2] == 0.8 and u[3] == 0.8
        assert u[4] == pytest.approx(1.0 / np.log(100.0))

    def test_no_tail_defaults_to_zero(self):
        c = PiecewiseTimeContract(steps=[(5.0, 1.0)])
        assert c.utility_at(6.0) == 0.0

    def test_rejects_unsorted_steps(self):
        with pytest.raises(ContractError):
            PiecewiseTimeContract(steps=[(10.0, 1.0), (5.0, 0.5)])

    def test_rejects_out_of_range_utility(self):
        with pytest.raises(ContractError):
            PiecewiseTimeContract(steps=[(5.0, 1.5)])

    def test_rejects_empty_steps(self):
        with pytest.raises(ContractError):
            PiecewiseTimeContract(steps=[])


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "contract",
        [
            DeadlineContract(10.0),
            LogDecayContract(),
            SoftDeadlineContract(10.0),
            PiecewiseTimeContract(steps=[(5.0, 1.0)]),
        ],
    )
    def test_rejects_negative_timestamps(self, contract):
        with pytest.raises(ContractError):
            contract.tuple_utilities(np.array([-1.0]), 1)

    @pytest.mark.parametrize(
        "contract",
        [DeadlineContract(10.0), LogDecayContract(), SoftDeadlineContract(10.0)],
    )
    def test_batch_utility_scales_with_size(self, contract):
        one = contract.batch_utility(5.0, 1, 100)
        ten = contract.batch_utility(5.0, 10, 100)
        assert ten == pytest.approx(10 * one)

    def test_batch_utility_empty(self):
        assert DeadlineContract(10.0).batch_utility(5.0, 0, 100) == 0.0

    def test_satisfaction_empty_log(self):
        c = DeadlineContract(10.0)
        assert c.satisfaction(np.array([]), total_results=5) == 0.0
        assert c.satisfaction(np.array([]), total_results=0) == 1.0


@given(
    ts=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=30),
    deadline=st.floats(0.1, 1e5, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_property_time_utilities_within_unit_interval(ts, deadline):
    arr = np.asarray(ts)
    for contract in (
        DeadlineContract(deadline),
        LogDecayContract(),
        SoftDeadlineContract(deadline),
    ):
        u = contract.tuple_utilities(arr, len(ts))
        assert np.all(u >= 0.0) and np.all(u <= 1.0)


@given(
    early=st.floats(0, 100, allow_nan=False),
    delta=st.floats(0.1, 1e4, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_property_time_utilities_never_increase_with_time(early, delta):
    late = early + delta
    for contract in (
        DeadlineContract(50.0),
        LogDecayContract(),
        SoftDeadlineContract(50.0),
    ):
        assert contract.utility_at(late) <= contract.utility_at(early) + 1e-12
