"""Tests for the experiment harness (configs, calibration, runner)."""

import numpy as np
import pytest

from repro.bench.config import (
    CALIBRATION,
    PRIORITY_SCHEME_BY_CONTRACT,
    ExperimentConfig,
    experiment_for,
    scale_factor,
)
from repro.bench.reporting import render_feature_matrix, render_table
from repro.bench.runner import (
    calibrated_contracts,
    make_pair,
    make_workload,
    reference_time,
    run_comparison,
)
from repro.contracts import (
    DeadlineContract,
    HybridContract,
    LogDecayContract,
    PercentPerIntervalContract,
    SoftDeadlineContract,
)
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig("independent", cardinality=80, selectivity=0.05, seed=3)


class TestConfig:
    def test_scale_factor_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_scale_factor_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scale_factor() == 0.1

    def test_scale_factor_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(BenchmarkError):
            scale_factor()

    def test_scaled_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        config = ExperimentConfig("independent", cardinality=100)
        assert config.scaled().cardinality == 200

    def test_experiment_for_known(self):
        for dist in ("independent", "correlated", "anticorrelated"):
            assert experiment_for(dist).distribution == dist

    def test_experiment_for_unknown(self):
        with pytest.raises(BenchmarkError):
            experiment_for("zipf")

    def test_priority_schemes_follow_section72(self):
        assert PRIORITY_SCHEME_BY_CONTRACT["C1"] == "dims_asc"
        assert PRIORITY_SCHEME_BY_CONTRACT["C2"] == "dims_asc"
        assert PRIORITY_SCHEME_BY_CONTRACT["C3"] == "dims_desc"
        assert PRIORITY_SCHEME_BY_CONTRACT["C4"] == "dims_desc"
        assert PRIORITY_SCHEME_BY_CONTRACT["C5"] == "uniform"


class TestCalibration:
    def test_reference_time_positive(self, tiny_config):
        pair = make_pair(tiny_config)
        workload = make_workload(tiny_config, "C1")
        assert reference_time(pair, workload, tiny_config) > 0

    def test_contract_types(self):
        workload = make_workload(
            ExperimentConfig("independent", 50), "C1"
        )
        t_ref = 1000.0
        assert isinstance(
            calibrated_contracts("C1", workload, t_ref)["Q1"], DeadlineContract
        )
        assert isinstance(
            calibrated_contracts("C2", workload, t_ref)["Q1"], LogDecayContract
        )
        assert isinstance(
            calibrated_contracts("C3", workload, t_ref)["Q1"], SoftDeadlineContract
        )
        assert isinstance(
            calibrated_contracts("C4", workload, t_ref)["Q1"],
            PercentPerIntervalContract,
        )
        assert isinstance(
            calibrated_contracts("C5", workload, t_ref)["Q1"], HybridContract
        )

    def test_deadline_scales_with_t_ref(self):
        workload = make_workload(ExperimentConfig("independent", 50), "C1")
        a = calibrated_contracts("C1", workload, 1000.0)["Q1"]
        b = calibrated_contracts("C1", workload, 2000.0)["Q1"]
        assert b.deadline == 2 * a.deadline
        assert a.deadline == CALIBRATION["deadline_fraction"] * 1000.0

    def test_unknown_contract_class(self):
        workload = make_workload(ExperimentConfig("independent", 50), "C1")
        with pytest.raises(BenchmarkError):
            calibrated_contracts("C9", workload, 1.0)


class TestRunComparison:
    def test_comparison_runs_all_strategies(self, tiny_config):
        comparison = run_comparison(tiny_config, "C1", ("CAQE", "JFSL"))
        assert set(comparison.outcomes) == {"CAQE", "JFSL"}
        for outcome in comparison.outcomes.values():
            assert 0.0 <= outcome.average_satisfaction <= 1.0
            assert outcome.stats["join_results"] > 0

    def test_relative_to(self, tiny_config):
        comparison = run_comparison(tiny_config, "C2", ("CAQE", "JFSL"))
        rel = comparison.relative_to("JFSL", "join_results")
        assert rel == pytest.approx(
            comparison.stat("JFSL", "join_results")
            / comparison.stat("CAQE", "join_results")
        )
        assert comparison.relative_to("CAQE", "join_results") == 1.0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(("a", "bbbb"), [(1, 2.5), ("xx", 3.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "2.500" in text

    def test_render_table_with_title(self):
        text = render_table(("x",), [(1,)], title="T")
        assert text.startswith("T\n")

    def test_render_empty_rows(self):
        text = render_table(("col",), [])
        assert "col" in text

    def test_feature_matrix_renders(self):
        text = render_feature_matrix()
        assert "CAQE" in text and "ProgXe+" in text
