"""Tests for the figure builders (small data sizes: structure, not shape)."""

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.figures import (
    figure6_sizes,
    figure9,
    figure10,
    figure11,
    workload_of_size,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig("independent", cardinality=70, selectivity=0.05, seed=9)


class TestWorkloadOfSize:
    @pytest.mark.parametrize("size", [1, 3, 6, 11])
    def test_sizes(self, size):
        assert len(workload_of_size(size, "C2")) == size

    def test_size_one_is_full_space_query(self):
        wl = workload_of_size(1, "C2")
        assert len(wl.queries[0].preference) == 4

    def test_interleaving_is_diverse(self):
        wl = workload_of_size(3, "C2")
        sizes = sorted(len(q.preference) for q in wl)
        assert len(set(sizes)) >= 2  # not all the same dimensionality

    def test_priorities_follow_scheme(self):
        wl = workload_of_size(11, "C3")  # dims_desc
        full = next(q for q in wl if len(q.preference) == 4)
        assert full.priority == min(q.priority for q in wl)


class TestFigure6:
    def test_sizes(self):
        sizes = figure6_sizes()
        assert sizes == {"full_skycube": 15, "min_max_cuboid": 8}


class TestFigure9Structure:
    def test_subset_of_contracts_and_strategies(self, tiny_config):
        fig = figure9(
            "independent",
            config=tiny_config,
            strategies=("CAQE", "JFSL"),
            contract_classes=("C1",),
        )
        assert set(fig.comparisons) == {"C1"}
        assert 0.0 <= fig.satisfaction("C1", "CAQE") <= 1.0
        assert 0.0 <= fig.satisfaction("C1", "JFSL") <= 1.0

    def test_table_renders(self, tiny_config):
        fig = figure9(
            "independent",
            config=tiny_config,
            strategies=("CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ"),
            contract_classes=("C1",),
        )
        text = fig.table()
        assert "Figure 9" in text and "C1" in text


class TestFigure10Structure:
    def test_relative_metrics(self, tiny_config):
        fig = figure10(
            "independent", config=tiny_config, strategies=("CAQE", "JFSL")
        )
        assert fig.relative("CAQE", "join_results") == 1.0
        assert fig.relative("JFSL", "join_results") > 1.0
        assert "Figure 10" in fig.table()


class TestFigure11Structure:
    def test_series_and_drop(self, tiny_config):
        fig = figure11(
            "C2",
            sizes=(1, 3),
            config=tiny_config,
            strategies=("CAQE", "SSMJ"),
        )
        assert set(fig.series) == {1, 3}
        assert 0.0 <= fig.satisfaction(1, "CAQE") <= 1.0
        assert isinstance(fig.drop("CAQE"), float)
        assert "Figure 11" in fig.table()
