"""Tests for SJ query specs, preferences, priorities, and workloads."""

import pytest

from repro.errors import QueryError
from repro.query import (
    JoinCondition,
    Preference,
    PriorityClass,
    SkylineJoinQuery,
    Workload,
    add,
    assign_priorities,
    subspace_workload,
)


@pytest.fixture
def functions():
    return tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3))


@pytest.fixture
def query(functions):
    return SkylineJoinQuery(
        "Q", JoinCondition.on("jc1"), functions, Preference.over("d1", "d2")
    )


class TestPreference:
    def test_positions(self):
        pref = Preference.over("d2", "d3")
        assert pref.positions(("d1", "d2", "d3")) == (1, 2)

    def test_positions_missing_raises(self):
        with pytest.raises(QueryError):
            Preference.over("d9").positions(("d1",))

    def test_subspace_check(self):
        assert Preference.over("d1").is_subspace_of(Preference.over("d1", "d2"))
        assert not Preference.over("d3").is_subspace_of(["d1", "d2"])

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            Preference(())

    def test_rejects_duplicates(self):
        with pytest.raises(QueryError):
            Preference(("d1", "d1"))

    def test_container_protocol(self):
        pref = Preference.over("d1", "d2")
        assert len(pref) == 2 and "d1" in pref and list(pref) == ["d1", "d2"]


class TestSkylineJoinQuery:
    def test_output_names(self, query):
        assert query.output_names == ("d1", "d2", "d3")
        assert query.skyline_dims == ("d1", "d2")

    def test_function_for(self, query):
        assert query.function_for("d2").output == "d2"
        with pytest.raises(QueryError):
            query.function_for("zzz")

    def test_preference_must_be_produced(self, functions):
        with pytest.raises(QueryError, match="not"):
            SkylineJoinQuery(
                "Q", JoinCondition.on("jc1"), functions, Preference.over("d9")
            )

    def test_duplicate_outputs_rejected(self):
        fns = (add("m1", "m1", "d1"), add("m2", "m2", "d1"))
        with pytest.raises(QueryError, match="duplicate"):
            SkylineJoinQuery("Q", JoinCondition.on("jc1"), fns, Preference.over("d1"))

    def test_priority_range(self, functions):
        with pytest.raises(QueryError):
            SkylineJoinQuery(
                "Q", JoinCondition.on("jc1"), functions,
                Preference.over("d1"), priority=1.5,
            )

    def test_with_priority(self, query):
        changed = query.with_priority(0.3)
        assert changed.priority == 0.3 and query.priority == 1.0

    @pytest.mark.parametrize(
        "pr,cls",
        [(1.0, PriorityClass.HIGH), (0.7, PriorityClass.HIGH),
         (0.69, PriorityClass.MEDIUM), (0.4, PriorityClass.MEDIUM),
         (0.39, PriorityClass.LOW), (0.0, PriorityClass.LOW)],
    )
    def test_priority_classes(self, pr, cls, functions):
        """Section 7.1's HIGH/MEDIUM/LOW bands."""
        q = SkylineJoinQuery(
            "Q", JoinCondition.on("jc1"), functions,
            Preference.over("d1"), priority=pr,
        )
        assert q.priority_class is cls

    def test_validate_against_tables(self, query, small_pair):
        query.validate(small_pair.left, small_pair.right)

    def test_validate_missing_attr(self, functions, small_pair):
        q = SkylineJoinQuery(
            "Q", JoinCondition.on("jc1"),
            (add("bogus", "m1", "d1"),), Preference.over("d1"),
        )
        with pytest.raises(QueryError, match="bogus"):
            q.validate(small_pair.left, small_pair.right)


class TestWorkload:
    def test_eleven_query_benchmark(self, eleven_query_workload):
        """|S_Q| = C(4,2) + C(4,3) + C(4,4) = 11 (Section 7)."""
        assert len(eleven_query_workload) == 11
        sizes = sorted(len(q.preference) for q in eleven_query_workload)
        assert sizes == [2] * 6 + [3] * 4 + [4]

    def test_output_dims_union(self, figure1_workload):
        assert figure1_workload.output_dims == ("d1", "d2", "d3", "d4")
        assert figure1_workload.skyline_dims == ("d1", "d2", "d3", "d4")

    def test_lookup(self, figure1_workload):
        assert figure1_workload["Q3"].name == "Q3"
        with pytest.raises(QueryError):
            figure1_workload["Q99"]

    def test_rejects_duplicates_names(self, query):
        with pytest.raises(QueryError, match="duplicate"):
            Workload([query, query])

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            Workload([])

    def test_conflicting_functions_rejected(self):
        q1 = SkylineJoinQuery(
            "Q1", JoinCondition.on("jc1"),
            (add("m1", "m1", "d1"),), Preference.over("d1"),
        )
        q2 = SkylineJoinQuery(
            "Q2", JoinCondition.on("jc1"),
            (add("m2", "m2", "d1"),), Preference.over("d1"),
        )
        with pytest.raises(QueryError, match="conflicting"):
            Workload([q1, q2])

    def test_join_conditions_deduplicated(self, figure1_workload):
        assert [c.name for c in figure1_workload.join_conditions] == ["JC1"]

    def test_by_priority_descending(self):
        wl = subspace_workload(3, priority_scheme="uniform")
        priorities = [q.priority for q in wl.by_priority()]
        assert priorities == sorted(priorities, reverse=True)

    def test_with_priorities(self, figure1_workload):
        changed = figure1_workload.with_priorities({"Q1": 0.2})
        assert changed["Q1"].priority == 0.2
        assert changed["Q2"].priority == figure1_workload["Q2"].priority

    def test_subset(self, eleven_query_workload):
        sub = eleven_query_workload.subset(["Q1", "Q5"])
        assert sub.names == ("Q1", "Q5")


class TestPriorityAssignment:
    def test_dims_asc_gives_high_priority_to_many_dims(self):
        wl = subspace_workload(4, priority_scheme="dims_asc")
        full = next(q for q in wl if len(q.preference) == 4)
        smallest = [q for q in wl if len(q.preference) == 2]
        assert full.priority > max(q.priority for q in smallest)

    def test_dims_desc_reverses(self):
        wl = subspace_workload(4, priority_scheme="dims_desc")
        full = next(q for q in wl if len(q.preference) == 4)
        assert full.priority == min(q.priority for q in wl)

    def test_uniform_spreads(self):
        wl = subspace_workload(4, priority_scheme="uniform")
        priorities = sorted(q.priority for q in wl)
        assert priorities[0] == pytest.approx(0.05)
        assert priorities[-1] == pytest.approx(1.0)
        assert len(set(priorities)) == len(priorities)

    def test_single_query_gets_full_priority(self):
        wl = subspace_workload(2, min_size=2)
        assert wl.queries[0].priority == 1.0

    def test_unknown_scheme(self):
        with pytest.raises(QueryError):
            assign_priorities([], "zipf")

    def test_invalid_sizes(self):
        with pytest.raises(QueryError):
            subspace_workload(3, min_size=0)
        with pytest.raises(QueryError):
            subspace_workload(3, min_size=2, max_size=5)
