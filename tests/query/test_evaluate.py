"""Tests for the reference (ground-truth) evaluator."""

import numpy as np
import pytest

from repro.query import (
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    add,
    apply_functions,
    hash_join,
    reference_evaluate,
)
from repro.relation import Relation, Role, Schema


@pytest.fixture
def tiny_tables():
    schema = Schema.of(m1=Role.MEASURE, m2=Role.MEASURE, jc1=Role.JOIN)
    left = Relation.from_rows(
        "R", schema, [(1.0, 9.0, 0), (5.0, 5.0, 0), (2.0, 2.0, 1)]
    )
    right = Relation.from_rows(
        "T", schema, [(1.0, 1.0, 0), (9.0, 9.0, 1), (3.0, 3.0, 2)]
    )
    return left, right


class TestHashJoin:
    def test_matches(self, tiny_tables):
        left, right = tiny_tables
        li, ri = hash_join(left, right, JoinCondition.on("jc1"))
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(0, 0), (1, 0), (2, 1)}

    def test_empty_join(self, tiny_tables):
        left, right = tiny_tables
        # join on measure column m1: values do not overlap except 1.0
        li, ri = hash_join(left, right, JoinCondition("e", "m1", "m2"))
        assert set(zip(li.tolist(), ri.tolist())) == {(0, 0)}

    def test_matches_quadratic_reference(self, small_pair):
        left, right = small_pair.left, small_pair.right
        jc = JoinCondition.on("jc1")
        li, ri = hash_join(left, right, jc)
        expected = {
            (i, j)
            for i in range(left.cardinality)
            for j in range(right.cardinality)
            if left.column("jc1")[i] == right.column("jc1")[j]
        }
        assert set(zip(li.tolist(), ri.tolist())) == expected


class TestApplyFunctions:
    def test_column_order_matches_functions(self, tiny_tables):
        left, right = tiny_tables
        fns = (add("m1", "m1", "d1"), add("m2", "m2", "d2"))
        matrix = apply_functions(
            fns, left, right, np.array([0, 2]), np.array([0, 1])
        )
        np.testing.assert_array_equal(matrix, [[2.0, 10.0], [11.0, 11.0]])

    def test_empty_input(self, tiny_tables):
        left, right = tiny_tables
        fns = (add("m1", "m1", "d1"),)
        matrix = apply_functions(fns, left, right, np.array([], dtype=int), np.array([], dtype=int))
        assert matrix.shape == (0, 1)


class TestReferenceEvaluate:
    def test_tiny_case_by_hand(self, tiny_tables):
        left, right = tiny_tables
        query = SkylineJoinQuery(
            "Q",
            JoinCondition.on("jc1"),
            (add("m1", "m1", "d1"), add("m2", "m2", "d2")),
            Preference.over("d1", "d2"),
        )
        # Join results: (0,0)->(2,10), (1,0)->(6,6), (2,1)->(11,11).
        # (11,11) dominated by (6,6); (2,10) and (6,6) incomparable.
        result = reference_evaluate(query, left, right)
        assert result.join_count == 3
        assert result.skyline_pairs == {(0, 0), (1, 0)}

    def test_skyline_matrix_rows(self, tiny_tables):
        left, right = tiny_tables
        query = SkylineJoinQuery(
            "Q",
            JoinCondition.on("jc1"),
            (add("m1", "m1", "d1"),),
            Preference.over("d1"),
        )
        result = reference_evaluate(query, left, right)
        assert result.skyline_matrix.shape[1] == 1
        # 1-d skyline: the minimum d1 value (2.0) only.
        assert result.skyline_matrix.min() == 2.0

    def test_counts_comparisons(self, small_pair, eleven_query_workload):
        from repro.skyline.dominance import ComparisonCounter

        counter = ComparisonCounter()
        reference_evaluate(
            eleven_query_workload["Q1"],
            small_pair.left,
            small_pair.right,
            counter=counter,
        )
        assert counter.comparisons > 0

    def test_subspace_queries_share_join(self, small_pair, eleven_query_workload):
        """All 11 queries see the same join cardinality (same condition)."""
        counts = {
            q.name: reference_evaluate(q, small_pair.left, small_pair.right).join_count
            for q in eleven_query_workload
        }
        assert len(set(counts.values())) == 1
