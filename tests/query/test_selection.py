"""Tests for per-query selection predicates."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import (
    AttributeFilter,
    JoinCondition,
    Op,
    Preference,
    SkylineJoinQuery,
    Workload,
    add,
    rows_passing,
    selection_bitmasks,
)
from repro.relation import Relation, Role, Schema


@pytest.fixture
def rel():
    schema = Schema.of(m1=Role.MEASURE, jc1=Role.JOIN)
    return Relation.from_rows(
        "R", schema, [(10.0, 0), (20.0, 1), (30.0, 0), (40.0, 2)]
    )


class TestAttributeFilter:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            (Op.LT, 25.0, [True, True, False, False]),
            (Op.LE, 20.0, [True, True, False, False]),
            (Op.GT, 25.0, [False, False, True, True]),
            (Op.GE, 30.0, [False, False, True, True]),
            (Op.EQ, 20.0, [False, True, False, False]),
            (Op.NE, 20.0, [True, False, True, True]),
            (Op.IN, {10.0, 40.0}, [True, False, False, True]),
        ],
    )
    def test_operators(self, rel, op, value, expected):
        mask = AttributeFilter("m1", op, value).evaluate(rel)
        np.testing.assert_array_equal(mask, expected)

    def test_validate(self, rel):
        AttributeFilter("m1", Op.LT, 5.0).validate(rel)
        with pytest.raises(QueryError):
            AttributeFilter("zzz", Op.LT, 5.0).validate(rel)

    def test_in_requires_collection(self):
        with pytest.raises(QueryError):
            AttributeFilter("m1", Op.IN, 5.0)

    def test_empty_attr_rejected(self):
        with pytest.raises(QueryError):
            AttributeFilter("", Op.LT, 5.0)


class TestRowsPassing:
    def test_conjunction(self, rel):
        filters = (
            AttributeFilter("m1", Op.GT, 10.0),
            AttributeFilter("m1", Op.LT, 40.0),
        )
        np.testing.assert_array_equal(
            rows_passing(filters, rel), [False, True, True, False]
        )

    def test_no_filters_all_pass(self, rel):
        assert rows_passing((), rel).all()


class TestSelectionBitmasks:
    def test_masks_per_query(self, rel):
        jc = JoinCondition.on("jc1")
        fns = (add("m1", "m1", "d1"),)
        q_all = SkylineJoinQuery("A", jc, fns, Preference.over("d1"))
        q_low = SkylineJoinQuery(
            "B", jc, fns, Preference.over("d1"),
            left_filters=(AttributeFilter("m1", Op.LE, 20.0),),
        )
        wl = Workload([q_all, q_low])
        masks = selection_bitmasks(wl, rel, "left")
        # Row 0 (10.0): passes both -> 0b11; row 3 (40.0): only A -> 0b01.
        np.testing.assert_array_equal(masks, [0b11, 0b11, 0b01, 0b01])

    def test_right_side_uses_right_filters(self, rel):
        jc = JoinCondition.on("jc1")
        fns = (add("m1", "m1", "d1"),)
        q = SkylineJoinQuery(
            "A", jc, fns, Preference.over("d1"),
            right_filters=(AttributeFilter("m1", Op.GT, 35.0),),
        )
        wl = Workload([q])
        np.testing.assert_array_equal(
            selection_bitmasks(wl, rel, "left"), [1, 1, 1, 1]
        )
        np.testing.assert_array_equal(
            selection_bitmasks(wl, rel, "right"), [0, 0, 0, 1]
        )
