"""Tests for join conditions and mapping functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.mapping import add, left_only, right_only, scaled, weighted_sum
from repro.query.predicates import JoinCondition
from repro.relation import Attribute, Relation, Role, Schema


@pytest.fixture
def left_rel():
    schema = Schema.of(m1=Role.MEASURE, jc1=Role.JOIN)
    return Relation.from_rows("R", schema, [(1.0, 0), (2.0, 1), (3.0, 0)])


@pytest.fixture
def right_rel():
    schema = Schema.of(m1=Role.MEASURE, jc1=Role.JOIN)
    return Relation.from_rows("T", schema, [(10.0, 0), (20.0, 2)])


class TestJoinCondition:
    def test_on_builder(self):
        jc = JoinCondition.on("city")
        assert jc.left_attr == jc.right_attr == "city"
        assert jc.name == "eq(city)"

    def test_named(self):
        assert JoinCondition.on("x", name="JC1").name == "JC1"

    def test_validate_passes(self, left_rel, right_rel):
        JoinCondition.on("jc1").validate(left_rel, right_rel)

    def test_validate_missing_left(self, left_rel, right_rel):
        jc = JoinCondition("bad", "nope", "jc1")
        with pytest.raises(QueryError, match="nope"):
            jc.validate(left_rel, right_rel)

    def test_validate_missing_right(self, left_rel, right_rel):
        jc = JoinCondition("bad", "jc1", "nope")
        with pytest.raises(QueryError):
            jc.validate(left_rel, right_rel)

    def test_matches(self):
        jc = JoinCondition.on("x")
        assert jc.matches(3, 3) and not jc.matches(3, 4)

    def test_rejects_empty_name(self):
        with pytest.raises(QueryError):
            JoinCondition("", "a", "b")

    def test_value_access(self, left_rel, right_rel):
        jc = JoinCondition.on("jc1")
        np.testing.assert_array_equal(jc.left_values(left_rel), [0, 1, 0])
        np.testing.assert_array_equal(jc.right_values(right_rel), [0, 2])


class TestMappingFunctions:
    def test_add(self):
        fn = add("m1", "m1", "d1")
        out = fn.apply({"m1": np.array([1.0, 2.0])}, {"m1": np.array([10.0, 20.0])})
        np.testing.assert_array_equal(out, [11.0, 22.0])

    def test_add_scalar(self):
        fn = add("a", "b", "d")
        assert fn.apply_scalar({"a": 1.0}, {"b": 2.5}) == 3.5

    def test_left_only_and_right_only(self):
        fl = left_only("price")
        fr = right_only("cost", output="total_cost")
        assert fl.output == "price" and fl.right_inputs == ()
        assert fr.output == "total_cost" and fr.left_inputs == ()
        assert fl.apply_scalar({"price": 9.0}, {}) == 9.0
        assert fr.apply_scalar({}, {"cost": 4.0}) == 4.0

    def test_weighted_sum(self):
        fn = weighted_sum(["a"], ["b", "c"], [2.0, 1.0, 0.5], "score")
        result = fn.apply_scalar({"a": 1.0}, {"b": 2.0, "c": 4.0})
        assert result == pytest.approx(2.0 + 2.0 + 2.0)

    def test_weighted_sum_wrong_arity(self):
        with pytest.raises(QueryError, match="weights"):
            weighted_sum(["a"], ["b"], [1.0], "x")

    def test_weighted_sum_negative_weight(self):
        with pytest.raises(QueryError, match="non-negative"):
            weighted_sum(["a"], [], [-1.0], "x")

    def test_scaled_example5(self):
        """Example 5: (price + WiFi) * 10 (+ air fare as offset)."""
        total = scaled(add("price", "wifi", "total"), 10.0, offset=300.0)
        assert total.apply_scalar({"price": 200.0}, {"wifi": 20.0}) == 2500.0

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(QueryError):
            scaled(add("a", "b", "d"), -1.0)

    def test_apply_bounds_monotone(self):
        fn = add("a", "b", "d")
        low, high = fn.apply_bounds({"a": 1.0}, {"a": 2.0}, {"b": 10.0}, {"b": 20.0})
        assert (low, high) == (11.0, 22.0)

    def test_apply_bounds_rejects_non_monotone(self):
        from repro.query.mapping import MappingFunction

        fn = MappingFunction(
            output="d", left_inputs=("a",), right_inputs=(), fn=lambda a: -a,
            monotone=False,
        )
        with pytest.raises(QueryError, match="monotone"):
            fn.apply_bounds({"a": 0.0}, {"a": 1.0}, {}, {})

    def test_rejects_no_inputs(self):
        from repro.query.mapping import MappingFunction

        with pytest.raises(QueryError):
            MappingFunction(output="d", left_inputs=(), right_inputs=(), fn=lambda: 0)

    def test_rejects_empty_output(self):
        from repro.query.mapping import MappingFunction

        with pytest.raises(QueryError):
            MappingFunction(output="", left_inputs=("a",), right_inputs=(), fn=lambda a: a)


@given(
    a_lo=st.floats(0, 50), a_hi_delta=st.floats(0, 50),
    b_lo=st.floats(0, 50), b_hi_delta=st.floats(0, 50),
    a=st.floats(0, 1), b=st.floats(0, 1),
)
@settings(max_examples=60, deadline=None)
def test_property_bounds_contain_any_interior_value(
    a_lo, a_hi_delta, b_lo, b_hi_delta, a, b
):
    """For monotone functions, f of interior points lies within the mapped bounds."""
    fn = add("x", "y", "d")
    a_hi, b_hi = a_lo + a_hi_delta, b_lo + b_hi_delta
    low, high = fn.apply_bounds({"x": a_lo}, {"x": a_hi}, {"y": b_lo}, {"y": b_hi})
    va = a_lo + a * (a_hi - a_lo)
    vb = b_lo + b * (b_hi - b_lo)
    value = fn.apply_scalar({"x": va}, {"y": vb})
    assert low - 1e-9 <= value <= high + 1e-9
