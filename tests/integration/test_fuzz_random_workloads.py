"""Whole-stack fuzzing with randomized workloads.

Random skyline subsets, mixed join conditions, random per-query filters:
every strategy must return exactly the reference answers every time.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import make_strategy
from repro.contracts import c2
from repro.datagen import generate_pair
from repro.errors import QueryError
from repro.query import random_workload, reference_evaluate


class TestGenerator:
    def test_deterministic(self):
        a = random_workload(5, seed=3)
        b = random_workload(5, seed=3)
        assert a.names == b.names
        assert [q.preference.dims for q in a] == [q.preference.dims for q in b]
        assert [q.priority for q in a] == [q.priority for q in b]

    def test_sizes_and_dims(self):
        wl = random_workload(7, dims=3, seed=1)
        assert len(wl) == 7
        for query in wl:
            assert 1 <= len(query.preference) <= 3

    def test_filters_appear_when_requested(self):
        wl = random_workload(20, filter_probability=1.0, seed=2)
        assert all(q.has_filters for q in wl)
        wl = random_workload(20, filter_probability=0.0, seed=2)
        assert not any(q.has_filters for q in wl)

    def test_multi_condition(self):
        wl = random_workload(20, join_attrs=("jc1", "jc2"), seed=4)
        assert len(set(c.name for c in wl.join_conditions)) == 2

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_count(self, bad):
        with pytest.raises(QueryError):
            random_workload(bad)

    def test_invalid_probability(self):
        with pytest.raises(QueryError):
            random_workload(3, filter_probability=1.5)


@given(
    seed=st.integers(0, 100_000),
    query_count=st.integers(1, 6),
    filter_probability=st.sampled_from([0.0, 0.5, 1.0]),
    two_conditions=st.booleans(),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_fuzz_caqe_and_sjfsl_exact(
    seed, query_count, filter_probability, two_conditions
):
    join_attrs = ("jc1", "jc2") if two_conditions else ("jc1",)
    pair = generate_pair(
        "independent", 70, 4, joins=2, selectivity=0.1, seed=seed
    )
    workload = random_workload(
        query_count,
        dims=4,
        join_attrs=join_attrs,
        filter_probability=filter_probability,
        seed=seed + 1,
    )
    contracts = {q.name: c2(scale=500.0) for q in workload}
    references = {
        q.name: reference_evaluate(q, pair.left, pair.right).skyline_pairs
        for q in workload
    }
    for name in ("CAQE", "S-JFSL"):
        result = make_strategy(name).run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert result.reported[query.name] == references[query.name], (
                seed,
                name,
                query.name,
            )
