"""Integration: the shipped examples must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print their findings"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3
