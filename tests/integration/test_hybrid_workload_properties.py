"""Integration property tests: randomized workloads through the full stack."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import make_strategy
from repro.contracts import c1, c4
from repro.core import run_caqe
from repro.datagen import generate_pair
from repro.query import reference_evaluate, subspace_workload


@given(
    seed=st.integers(0, 10_000),
    distribution=st.sampled_from(["independent", "correlated", "anticorrelated"]),
    min_size=st.integers(2, 4),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_caqe_exact_on_random_configurations(seed, distribution, min_size):
    pair = generate_pair(distribution, 60, 4, selectivity=0.1, seed=seed)
    workload = subspace_workload(4, min_size=min_size)
    contracts = {q.name: c1(1e12) for q in workload}
    result = run_caqe(pair.left, pair.right, workload, contracts)
    for query in workload:
        ref = reference_evaluate(query, pair.left, pair.right)
        assert result.reported[query.name] == ref.skyline_pairs


@given(seed=st.integers(0, 10_000))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_progressive_reports_are_final(seed):
    """No reported result may be absent from the query's true skyline —
    progressive output must never retract."""
    pair = generate_pair("independent", 70, 4, selectivity=0.1, seed=seed)
    workload = subspace_workload(4)
    contracts = {q.name: c4(0.1, 1000.0) for q in workload}
    result = run_caqe(pair.left, pair.right, workload, contracts)
    for query in workload:
        ref = reference_evaluate(query, pair.left, pair.right)
        reported_keys = set(result.logs[query.name].keys)
        assert reported_keys <= ref.skyline_pairs or reported_keys == ref.skyline_pairs
        # Log keys are unique: nothing is reported twice.
        assert len(result.logs[query.name].keys) == len(reported_keys)


def test_strategies_share_identical_inputs_give_identical_horizon_ordering():
    """Sanity of the shared virtual-time axis: the blocking reference is the
    slowest of the compared strategies on a join-heavy workload."""
    pair = generate_pair("independent", 200, 4, selectivity=0.05, seed=3)
    workload = subspace_workload(4)
    contracts = {q.name: c1(1e12) for q in workload}
    horizons = {}
    for name in ("CAQE", "S-JFSL", "JFSL"):
        res = make_strategy(name).run(pair.left, pair.right, workload, contracts)
        horizons[name] = res.horizon
    assert horizons["JFSL"] > horizons["CAQE"]
    assert horizons["JFSL"] > horizons["S-JFSL"]
