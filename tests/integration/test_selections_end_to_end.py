"""Integration: per-query selections through every execution strategy.

Also contains the multi-join-condition regression test: queries with
different join conditions may share skyline subspaces, and a tuple from one
condition's join must never evict another condition's results (the
CQL-intersection rule of Section 6, enforced by WorkloadPlan's grouping).
"""

import pytest

from repro.baselines import all_strategy_names, make_strategy
from repro.contracts import c2
from repro.datagen import generate_pair
from repro.query import (
    AttributeFilter,
    JoinCondition,
    Op,
    Preference,
    SkylineJoinQuery,
    Workload,
    add,
    reference_evaluate,
)


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 150, 4, joins=2, selectivity=0.05, seed=41)


@pytest.fixture(scope="module")
def filtered_workload():
    jc = JoinCondition.on("jc1", name="JC1")
    fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3))
    return Workload(
        [
            SkylineJoinQuery("all", jc, fns, Preference.over("d1", "d2")),
            SkylineJoinQuery(
                "cheap_left", jc, fns, Preference.over("d1", "d2"),
                left_filters=(AttributeFilter("m1", Op.LE, 50.0),),
            ),
            SkylineJoinQuery(
                "balanced", jc, fns, Preference.over("d1", "d2", "d3"),
                left_filters=(AttributeFilter("m1", Op.LE, 80.0),),
                right_filters=(AttributeFilter("m2", Op.GE, 20.0),),
            ),
        ]
    )


def _verify(pair, workload, strategies):
    contracts = {q.name: c2(scale=1000.0) for q in workload}
    references = {
        q.name: reference_evaluate(q, pair.left, pair.right).skyline_pairs
        for q in workload
    }
    for name in strategies:
        result = make_strategy(name).run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert result.reported[query.name] == references[query.name], (
                name,
                query.name,
            )


class TestSelections:
    def test_all_strategies_exact_with_filters(self, pair, filtered_workload):
        _verify(pair, filtered_workload, all_strategy_names())

    def test_filters_actually_restrict(self, pair, filtered_workload):
        """Sanity: a filtered query's result differs from its unfiltered twin
        (otherwise this test file proves nothing)."""
        ref_all = reference_evaluate(
            filtered_workload["all"], pair.left, pair.right
        )
        ref_cheap = reference_evaluate(
            filtered_workload["cheap_left"], pair.left, pair.right
        )
        assert ref_all.skyline_pairs != ref_cheap.skyline_pairs or (
            ref_all.join_count != ref_cheap.join_count
        )

    def test_selective_filter_empty_result(self, pair):
        jc = JoinCondition.on("jc1")
        fns = (add("m1", "m1", "d1"), add("m2", "m2", "d2"))
        workload = Workload(
            [
                SkylineJoinQuery("base", jc, fns, Preference.over("d1", "d2")),
                SkylineJoinQuery(
                    "impossible", jc, fns, Preference.over("d1", "d2"),
                    left_filters=(AttributeFilter("m1", Op.GT, 1e9),),
                ),
            ]
        )
        _verify(pair, workload, ("CAQE", "JFSL"))


class TestCoarsePruningWithFiltersRegression:
    def test_highly_selective_filter_survives_region_pruning(self):
        """Regression (found by the fuzzer): region-level dominance pruning
        assumed the dominating region's guaranteed join result serves every
        query — a selective filter can remove exactly that result, so
        filtered queries must be exempt from coarse pruning."""
        from repro.query import random_workload

        pair = generate_pair(
            "independent", 70, 4, joins=2, selectivity=0.1, seed=0
        )
        workload = random_workload(
            6, dims=4, join_attrs=("jc1", "jc2"),
            filter_probability=1.0, seed=1,
        )
        _verify(pair, workload, ("CAQE", "S-JFSL", "ProgXe+"))

    def test_filtered_queries_keep_all_their_regions(self):
        from repro.core.coarse_skyline import coarse_skyline
        from repro.core.coarse_join import coarse_join
        from repro.core.stats import ExecutionStats
        from repro.partition import quadtree_partition
        from repro.plan import build_minmax_cuboid
        from repro.query import random_workload

        pair = generate_pair("independent", 80, 4, selectivity=0.1, seed=2)
        workload = random_workload(4, dims=4, filter_probability=1.0, seed=3)
        stats = ExecutionStats()
        lp = quadtree_partition(
            pair.left, ("m1", "m2", "m3", "m4"), workload.join_conditions,
            "left", capacity=20,
        )
        rp = quadtree_partition(
            pair.right, ("m1", "m2", "m3", "m4"), workload.join_conditions,
            "right", capacity=20,
        )
        cj = coarse_join(workload, lp, rp, stats)
        cuboid = build_minmax_cuboid(workload)
        result = coarse_skyline(workload, cuboid, cj.regions, stats)
        for qi, query in enumerate(workload):
            serving = {r.region_id for r in cj.regions if r.rql & (1 << qi)}
            assert result.reg[query.name] == serving, query.name


class TestMultiJoinConditionRegression:
    def test_shared_subspace_across_conditions(self, pair):
        """'narrow' (JC2) has a preference that is a subspace of 'wide'
        (JC1).  A JC1 tuple landing in the shared subspace must not evict
        narrow's candidates — this failed before WorkloadPlan grouped
        tuple-level state by join condition."""
        fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3))
        workload = Workload(
            [
                SkylineJoinQuery(
                    "wide", JoinCondition.on("jc1", name="JC1"), fns,
                    Preference.over("d1", "d2", "d3"),
                ),
                SkylineJoinQuery(
                    "narrow", JoinCondition.on("jc2", name="JC2"), fns,
                    Preference.over("d1", "d2"),
                ),
            ]
        )
        _verify(pair, workload, ("CAQE", "S-JFSL", "ProgXe+"))

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_multi_condition_sweep(self, seed):
        pair = generate_pair(
            "independent", 100, 4, joins=2, selectivity=0.08, seed=seed
        )
        fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3, 4))
        workload = Workload(
            [
                SkylineJoinQuery(
                    "a", JoinCondition.on("jc1", name="JC1"), fns,
                    Preference.over("d1", "d2", "d3"),
                ),
                SkylineJoinQuery(
                    "b", JoinCondition.on("jc2", name="JC2"), fns,
                    Preference.over("d2", "d3"),
                ),
                SkylineJoinQuery(
                    "c", JoinCondition.on("jc1", name="JC1"), fns,
                    Preference.over("d2", "d3", "d4"),
                ),
                SkylineJoinQuery(
                    "d", JoinCondition.on("jc2", name="JC2"), fns,
                    Preference.over("d1", "d4"),
                ),
            ]
        )
        _verify(pair, workload, ("CAQE", "S-JFSL"))
