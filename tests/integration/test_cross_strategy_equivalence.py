"""Integration: every strategy agrees with the reference on every workload.

The single most important invariant in the package: execution strategy
changes *when* results appear and *what it costs*, never *what* the results
are.  These tests sweep distributions, selectivities, priority schemes, and
workload shapes.
"""

import pytest

from repro.baselines import all_strategy_names, make_strategy
from repro.contracts import c2
from repro.core import CAQEConfig
from repro.datagen import generate_pair
from repro.query import reference_evaluate, subspace_workload


def _verify(pair, workload, strategies=("CAQE", "S-JFSL")):
    contracts = {q.name: c2(scale=1000.0) for q in workload}
    references = {
        q.name: reference_evaluate(q, pair.left, pair.right).skyline_pairs
        for q in workload
    }
    for name in strategies:
        result = make_strategy(name).run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert result.reported[query.name] == references[query.name], (
                name,
                query.name,
            )


@pytest.mark.parametrize("distribution", ["independent", "correlated", "anticorrelated"])
@pytest.mark.parametrize("selectivity", [0.1, 0.02])
def test_distribution_selectivity_sweep(distribution, selectivity):
    pair = generate_pair(distribution, 90, 4, selectivity=selectivity, seed=13)
    workload = subspace_workload(4, priority_scheme="uniform")
    _verify(pair, workload, strategies=all_strategy_names())


@pytest.mark.parametrize("dims", [2, 3])
def test_lower_dimensional_workloads(dims):
    pair = generate_pair("independent", 120, dims, selectivity=0.05, seed=17)
    workload = subspace_workload(dims, min_size=1)
    _verify(pair, workload)


def test_wide_workload_five_dims():
    pair = generate_pair("independent", 80, 5, selectivity=0.05, seed=19)
    workload = subspace_workload(5, min_size=3)
    _verify(pair, workload)


def test_tiny_tables():
    pair = generate_pair("independent", 8, 4, selectivity=0.5, seed=29)
    workload = subspace_workload(4)
    _verify(pair, workload, strategies=all_strategy_names())


def test_selectivity_one_cross_product():
    pair = generate_pair("independent", 40, 4, selectivity=1.0, seed=31)
    workload = subspace_workload(4)
    _verify(pair, workload)


def test_single_sided_functions_violate_dva_safely():
    """Regression: ``left_only``/``right_only`` dimensions repeat values
    across join results (one base row joins many partners), breaking the
    DVA property.  The Theorem-1 seeded insert must self-verify and stay
    exact without any configuration change."""
    from repro.datagen import domains
    from repro.query import JoinCondition, Preference, SkylineJoinQuery, Workload
    from repro.query.mapping import add, left_only, right_only

    quotes = domains.quotes(250, seed=21)
    sentiment = domains.sentiment(250, seed=22)
    fns = (
        left_only("volatility"),
        add("spread", "source_risk", "trade_risk"),
        right_only("neg_sentiment"),
    )
    jc = JoinCondition.on("ticker", name="by_ticker")
    workload = Workload(
        [
            SkylineJoinQuery("a", jc, fns, Preference.over("volatility", "trade_risk")),
            SkylineJoinQuery("b", jc, fns, Preference.over("trade_risk", "neg_sentiment")),
            SkylineJoinQuery(
                "c", jc, fns,
                Preference.over("volatility", "trade_risk", "neg_sentiment"),
            ),
        ]
    )
    contracts = {q.name: c2(scale=1000.0) for q in workload}
    for name in ("CAQE", "S-JFSL", "ProgXe+"):
        result = make_strategy(name).run(quotes, sentiment, workload, contracts)
        for query in workload:
            ref = reference_evaluate(query, quotes, sentiment)
            assert result.reported[query.name] == ref.skyline_pairs, (name, query.name)


def test_duplicate_heavy_data():
    """Integer-quantised measures violate DVA; exactness must survive."""
    import numpy as np

    from repro.relation import Relation

    pair = generate_pair("independent", 100, 4, selectivity=0.05, seed=37)

    def quantise(rel):
        columns = {}
        for name in rel.schema.names:
            col = rel.column(name)
            if name.startswith("m"):
                col = np.round(col / 10.0) * 10.0
            columns[name] = col
        return Relation(rel.name, rel.schema, columns)

    left, right = quantise(pair.left), quantise(pair.right)
    workload = subspace_workload(4)
    contracts = {q.name: c2(scale=1000.0) for q in workload}
    references = {
        q.name: reference_evaluate(q, left, right).skyline_pairs for q in workload
    }
    # DVA does not hold: run CAQE with the Theorem-1 shortcut disabled.
    result = make_strategy("CAQE", CAQEConfig(assume_dva=False)).run(
        left, right, workload, contracts
    )
    for query in workload:
        assert result.reported[query.name] == references[query.name]
