"""Unit tests for the retry/quarantine state machine."""

import dataclasses

import pytest

from repro.errors import ExecutionError
from repro.robustness.recovery import (
    QUARANTINE,
    REASON_QUARANTINE,
    RETRY,
    DegradedReport,
    RegionSupervisor,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_base=50.0, backoff_factor=2.0,
            backoff_cap=300.0,
        )
        assert [policy.backoff(n) for n in range(1, 6)] == [
            50.0, 100.0, 200.0, 300.0, 300.0,
        ]

    def test_backoff_requires_at_least_one_failure(self):
        with pytest.raises(ExecutionError, match="failure_count"):
            RetryPolicy().backoff(0)

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"backoff_base": -1.0}, "non-negative"),
            ({"backoff_cap": -1.0}, "non-negative"),
            ({"backoff_factor": 0.5}, "backoff_factor"),
        ],
    )
    def test_validation(self, overrides, match):
        with pytest.raises(ExecutionError, match=match):
            RetryPolicy(**overrides)


class TestRetryPolicyEdgeCases:
    def test_zero_backoff_base_is_always_zero(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.backoff(1) == 0.0
        assert policy.backoff(10_000) == 0.0

    def test_huge_failure_count_saturates_at_cap(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=50.0, backoff_factor=2.0,
            backoff_cap=800.0,
        )
        # 50 * 2**9999 overflows a float; the cap must absorb it.
        assert policy.backoff(10_000) == 800.0

    def test_huge_factor_saturates_at_cap(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_factor=1e308, backoff_cap=500.0
        )
        assert policy.backoff(3) == 500.0

    def test_normal_range_matches_min_semantics(self):
        policy = RetryPolicy(
            max_attempts=8, backoff_base=50.0, backoff_factor=2.0,
            backoff_cap=800.0,
        )
        assert [policy.backoff(n) for n in range(1, 8)] == [
            min(50.0 * 2.0 ** (n - 1), 800.0) for n in range(1, 8)
        ]

    def test_zero_retry_policy_exposes_max_retries(self):
        assert RetryPolicy(max_attempts=1).max_retries == 0
        assert RetryPolicy(max_attempts=3).max_retries == 2

    def test_zero_retry_policy_still_prices_backoff(self):
        # A max_attempts=1 policy never schedules a retry, but backoff()
        # must stay well-defined (the supervisor may price hypothetical
        # waits for reporting).
        policy = RetryPolicy(max_attempts=1, backoff_base=50.0)
        assert policy.backoff(1) == 50.0


class TestRegionSupervisor:
    def test_retry_until_attempts_exhausted_then_quarantine(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=3))
        assert supervisor.record_failure(7) == RETRY
        assert supervisor.record_failure(7) == RETRY
        assert supervisor.record_failure(7) == QUARANTINE
        assert supervisor.is_quarantined(7)
        assert not supervisor.is_quarantined(8)

    def test_single_attempt_policy_quarantines_immediately(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=1))
        assert supervisor.record_failure(1) == QUARANTINE

    def test_next_attempt_counts_from_one(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=5))
        assert supervisor.next_attempt(3) == 1
        supervisor.record_failure(3)
        assert supervisor.next_attempt(3) == 2

    def test_failures_are_tracked_per_region(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=2))
        supervisor.record_failure(1)
        assert supervisor.record_failure(2) == RETRY
        assert supervisor.record_failure(1) == QUARANTINE
        assert not supervisor.is_quarantined(2)

    def test_backoff_for_follows_the_failure_count(self):
        supervisor = RegionSupervisor(
            RetryPolicy(max_attempts=4, backoff_base=10.0, backoff_factor=3.0,
                        backoff_cap=1000.0)
        )
        supervisor.record_failure(5)
        assert supervisor.backoff_for(5) == 10.0
        supervisor.record_failure(5)
        assert supervisor.backoff_for(5) == 30.0

    def test_backoff_for_without_failure_raises(self):
        with pytest.raises(ExecutionError, match="no recorded failure"):
            RegionSupervisor().backoff_for(9)


class TestDegradedReport:
    def test_is_immutable(self):
        report = DegradedReport(
            query_name="Q1", region_id=3, lower=(0.0,), upper=(1.0,),
            est_join_count=5.0, reason="budget", timestamp=12.0,
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.reason = "quarantine"


class TestAllRegionsQuarantined:
    """Every region fails persistently before any tuple-level work.

    The answer each query receives is then *pure MQLA*: no tuple-level
    comparisons are ever charged, the reported identity sets are empty,
    and every region the query touches contributes one quarantine-flagged
    :class:`DegradedReport` carrying its coarse bounds.
    """

    @pytest.fixture(scope="class")
    def total_loss_run(self):
        from repro.contracts import c2
        from repro.core import CAQE, CAQEConfig
        from repro.datagen import generate_pair
        from repro.robustness.chaos import figure1_workload
        from repro.robustness.faults import FaultConfig, FaultPlan

        pair = generate_pair(
            "independent", 60, 4, selectivity=0.05, seed=11
        )
        workload = figure1_workload()
        contracts = {q.name: c2(scale=100.0) for q in workload}
        config = CAQEConfig(
            enable_recovery=True,
            retry_policy=RetryPolicy(max_attempts=1),
            fault_plan=FaultPlan(
                FaultConfig(seed=11, persistent_failure_rate=1.0)
            ),
        )
        result = CAQE(config).run(
            pair.left, pair.right, workload, contracts
        )
        return result, workload

    def test_no_tuple_level_evaluation_happened(self, total_loss_run):
        result, _ = total_loss_run
        assert result.stats.skyline_comparisons == 0
        assert result.stats.region_trace == []
        assert result.stats.regions_quarantined > 0
        # The coarse MQLA phase still ran — that is where the bounds
        # in the degraded reports come from.
        assert result.stats.coarse_comparisons > 0

    def test_every_query_gets_a_pure_mqla_answer(self, total_loss_run):
        result, workload = total_loss_run
        for query in workload:
            assert result.reported[query.name] == set()
            assert result.is_degraded(query.name)
            reports = result.degraded[query.name]
            assert reports, query.name
            # Bounds live in the shared output space, which covers at
            # least the query's own preference dimensions.
            dims = len(query.preference.dims)
            for report in reports:
                assert report.reason == REASON_QUARANTINE
                assert len(report.lower) == len(report.upper)
                assert len(report.lower) >= dims
                assert all(
                    lo <= hi
                    for lo, hi in zip(report.lower, report.upper)
                )
                assert report.est_join_count >= 0.0

    def test_degraded_report_count_matches_stats(self, total_loss_run):
        result, _ = total_loss_run
        total = sum(len(r) for r in result.degraded.values())
        assert total == result.stats.degraded_reports
