"""Unit tests for the retry/quarantine state machine."""

import dataclasses

import pytest

from repro.errors import ExecutionError
from repro.robustness.recovery import (
    QUARANTINE,
    RETRY,
    DegradedReport,
    RegionSupervisor,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_base=50.0, backoff_factor=2.0,
            backoff_cap=300.0,
        )
        assert [policy.backoff(n) for n in range(1, 6)] == [
            50.0, 100.0, 200.0, 300.0, 300.0,
        ]

    def test_backoff_requires_at_least_one_failure(self):
        with pytest.raises(ExecutionError, match="failure_count"):
            RetryPolicy().backoff(0)

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"backoff_base": -1.0}, "non-negative"),
            ({"backoff_cap": -1.0}, "non-negative"),
            ({"backoff_factor": 0.5}, "backoff_factor"),
        ],
    )
    def test_validation(self, overrides, match):
        with pytest.raises(ExecutionError, match=match):
            RetryPolicy(**overrides)


class TestRegionSupervisor:
    def test_retry_until_attempts_exhausted_then_quarantine(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=3))
        assert supervisor.record_failure(7) == RETRY
        assert supervisor.record_failure(7) == RETRY
        assert supervisor.record_failure(7) == QUARANTINE
        assert supervisor.is_quarantined(7)
        assert not supervisor.is_quarantined(8)

    def test_single_attempt_policy_quarantines_immediately(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=1))
        assert supervisor.record_failure(1) == QUARANTINE

    def test_next_attempt_counts_from_one(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=5))
        assert supervisor.next_attempt(3) == 1
        supervisor.record_failure(3)
        assert supervisor.next_attempt(3) == 2

    def test_failures_are_tracked_per_region(self):
        supervisor = RegionSupervisor(RetryPolicy(max_attempts=2))
        supervisor.record_failure(1)
        assert supervisor.record_failure(2) == RETRY
        assert supervisor.record_failure(1) == QUARANTINE
        assert not supervisor.is_quarantined(2)

    def test_backoff_for_follows_the_failure_count(self):
        supervisor = RegionSupervisor(
            RetryPolicy(max_attempts=4, backoff_base=10.0, backoff_factor=3.0,
                        backoff_cap=1000.0)
        )
        supervisor.record_failure(5)
        assert supervisor.backoff_for(5) == 10.0
        supervisor.record_failure(5)
        assert supervisor.backoff_for(5) == 30.0

    def test_backoff_for_without_failure_raises(self):
        with pytest.raises(ExecutionError, match="no recorded failure"):
            RegionSupervisor().backoff_for(9)


class TestDegradedReport:
    def test_is_immutable(self):
        report = DegradedReport(
            query_name="Q1", region_id=3, lower=(0.0,), upper=(1.0,),
            est_join_count=5.0, reason="budget", timestamp=12.0,
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.reason = "quarantine"
