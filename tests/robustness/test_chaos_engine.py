"""Property-based chaos tests for the fault-tolerant CAQE engine.

The robustness contract under test (docs/ARCHITECTURE.md §9):

* with the switches on but no faults injected, the engine is
  bit-identical to the baseline;
* identical fault seeds replay identical runs (traces, clock, charged
  comparisons, reported identities, degraded reports);
* no query is ever left unanswered — tuple-level results, degraded
  bounds, or both;
* progressive report streams never repeat an identity, even across
  retried regions;
* quarantining a region promotes its dependents instead of stranding
  them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.errors import BudgetExhausted, RegionFailure
from repro.query import reference_evaluate
from repro.robustness.chaos import figure1_workload
from repro.robustness.faults import FaultConfig, FaultPlan
from repro.robustness.recovery import (
    REASON_BUDGET,
    REASON_QUARANTINE,
    RetryPolicy,
)
from repro.robustness.sanitize import sanitize_relation


def make_inputs(seed, cardinality=60):
    pair = generate_pair(
        "independent", cardinality, 4, selectivity=0.05, seed=seed
    )
    workload = figure1_workload()
    contracts = {q.name: c2(scale=100.0) for q in workload}
    return pair, workload, contracts


def run(pair, workload, contracts, **config_overrides):
    config = CAQEConfig(**config_overrides)
    return CAQE(config).run(pair.left, pair.right, workload, contracts)


def observables(result):
    return (
        result.stats.region_trace,
        result.stats.skyline_comparisons,
        result.stats.elapsed,
        result.reported,
        result.degraded,
        result.stats.summary(),
    )


def assert_answered_and_duplicate_free(result, workload):
    for query in workload:
        assert result.reported[query.name] or result.is_degraded(query.name)
        keys = result.logs[query.name].keys
        assert len(keys) == len(set(keys)), query.name


class TestDisabledEquivalence:
    @given(data_seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_switches_on_without_faults_is_bit_identical(self, data_seed):
        pair, workload, contracts = make_inputs(data_seed)
        baseline = run(pair, workload, contracts)
        robust = run(
            pair, workload, contracts,
            enable_sanitize=True, enable_recovery=True,
        )
        assert observables(robust) == observables(baseline)
        assert robust.stats.tuples_quarantined == 0
        assert robust.stats.region_retries == 0
        assert not robust.degraded

    def test_inactive_fault_plan_is_also_identical(self):
        pair, workload, contracts = make_inputs(42)
        baseline = run(pair, workload, contracts)
        robust = run(
            pair, workload, contracts,
            enable_sanitize=True, enable_recovery=True,
            fault_plan=FaultPlan(FaultConfig(seed=42)),
        )
        assert observables(robust) == observables(baseline)


class TestDeterminism:
    @given(fault_seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_same_fault_seed_replays_identically(self, fault_seed):
        pair, workload, contracts = make_inputs(7)
        plan = FaultPlan(
            FaultConfig(
                seed=fault_seed,
                corrupt_fraction=0.05,
                region_failure_rate=0.15,
                persistent_failure_rate=0.05,
                straggler_rate=0.2,
            )
        )
        kwargs = dict(
            enable_sanitize=True, enable_recovery=True, fault_plan=plan,
            query_time_budget=60.0 * 400.0,
        )
        first = run(pair, workload, contracts, **kwargs)
        second = run(pair, workload, contracts, **kwargs)
        assert observables(first) == observables(second)
        assert_answered_and_duplicate_free(first, workload)


class TestFailureRecovery:
    @given(fault_seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_every_query_answered_under_region_failures(self, fault_seed):
        pair, workload, contracts = make_inputs(7)
        plan = FaultPlan(
            FaultConfig(
                seed=fault_seed,
                region_failure_rate=0.2,
                persistent_failure_rate=0.05,
            )
        )
        result = run(
            pair, workload, contracts,
            enable_recovery=True,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
        )
        assert_answered_and_duplicate_free(result, workload)
        for reports in result.degraded.values():
            assert all(r.reason == REASON_QUARANTINE for r in reports)

    def test_unhandled_region_failure_propagates_without_recovery(self):
        pair, workload, contracts = make_inputs(7)
        plan = FaultPlan(FaultConfig(seed=1, region_failure_rate=1.0))
        with pytest.raises(RegionFailure):
            run(pair, workload, contracts, fault_plan=plan)

    def test_all_regions_failing_degrades_every_query(self):
        """Persistent failure everywhere: dependents must still be reached.

        If quarantine stranded a region's dependents the run would end
        with live regions never drained; instead every region must be
        promoted, attempted, and quarantined in turn, and every query
        must close with degraded bounds.
        """
        pair, workload, contracts = make_inputs(7)
        baseline = run(pair, workload, contracts)
        plan = FaultPlan(FaultConfig(seed=1, persistent_failure_rate=1.0))
        result = run(
            pair, workload, contracts,
            enable_recovery=True,
            retry_policy=RetryPolicy(max_attempts=2),
            fault_plan=plan,
        )
        for query in workload:
            assert not result.reported[query.name]
            assert result.is_degraded(query.name)
        # No tuple-level pruning happened, so at least every region the
        # baseline processed must have been promoted and quarantined.
        assert result.stats.regions_quarantined >= len(
            set(baseline.stats.region_trace)
        )
        assert result.stats.region_retries > 0


class TestBudgetDegradation:
    def test_exhausted_budget_yields_flagged_bounds(self):
        pair, workload, contracts = make_inputs(7, cardinality=100)
        stragglers = FaultPlan(
            FaultConfig(seed=5, straggler_rate=0.5, straggler_factor=8.0)
        )
        result = run(
            pair, workload, contracts,
            enable_recovery=True,
            fault_plan=stragglers,
            query_time_budget=2000.0,
        )
        assert result.stats.degraded_reports > 0
        assert_answered_and_duplicate_free(result, workload)
        degraded_queries = [
            q.name for q in workload if result.is_degraded(q.name)
        ]
        assert degraded_queries
        for name in degraded_queries:
            for report in result.degraded[name]:
                assert report.reason == REASON_BUDGET
                assert report.query_name == name
                assert len(report.lower) == len(report.upper)

    def test_budget_without_recovery_fails_loudly(self):
        pair, workload, contracts = make_inputs(7)
        with pytest.raises(BudgetExhausted, match="enable_recovery"):
            run(pair, workload, contracts, query_time_budget=1.0)

    def test_generous_budget_never_degrades(self):
        pair, workload, contracts = make_inputs(7)
        baseline = run(pair, workload, contracts)
        result = run(
            pair, workload, contracts,
            enable_recovery=True,
            query_time_budget=baseline.stats.elapsed * 10.0,
        )
        assert observables(result) == observables(baseline)
        assert not result.degraded


class TestCorruptionAbsorption:
    def test_sanitizer_recovers_the_clean_reference_answer(self):
        pair, workload, contracts = make_inputs(7, cardinality=100)
        plan = FaultPlan(FaultConfig(seed=9, corrupt_fraction=0.08))
        result = run(
            pair, workload, contracts,
            enable_sanitize=True, fault_plan=plan,
        )
        assert result.stats.tuples_quarantined > 0
        assert set(result.quarantine) == {"left", "right"}
        clean_left, _ = sanitize_relation(
            plan.corrupt_relation(pair.left, 0)[0]
        )
        clean_right, _ = sanitize_relation(
            plan.corrupt_relation(pair.right, 1)[0]
        )
        for query in workload:
            reference = reference_evaluate(query, clean_left, clean_right)
            assert result.reported[query.name] == reference.skyline_pairs
