"""Unit tests for the deterministic fault-injection plan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import generate_pair
from repro.errors import ExecutionError
from repro.robustness.faults import (
    CORRUPTION_KINDS,
    FaultConfig,
    FaultPlan,
)


def plan(**overrides):
    return FaultPlan(FaultConfig(**overrides))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field", ["corrupt_fraction", "region_failure_rate",
                  "persistent_failure_rate", "straggler_rate"],
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_lie_in_unit_interval(self, field, bad):
        with pytest.raises(ExecutionError, match=field):
            plan(**{field: bad})

    def test_straggler_factor_below_one_rejected(self):
        with pytest.raises(ExecutionError, match="straggler_factor"):
            plan(straggler_rate=0.5, straggler_factor=0.5)

    def test_active_property(self):
        assert not plan().active
        assert plan(corrupt_fraction=0.1).active
        assert plan(region_failure_rate=0.1).active
        assert plan(persistent_failure_rate=0.1).active
        assert plan(straggler_rate=0.1).active


class TestCorruption:
    def test_zero_fraction_returns_same_object(self):
        pair = generate_pair("independent", 50, 3, selectivity=0.1, seed=7)
        corrupted, injected = plan().corrupt_relation(pair.left, 0)
        assert corrupted is pair.left
        assert injected == []

    def test_corruption_count_and_audit_trail(self):
        pair = generate_pair("independent", 100, 3, selectivity=0.1, seed=7)
        p = plan(seed=3, corrupt_fraction=0.1)
        corrupted, injected = p.corrupt_relation(pair.left, 0)
        assert corrupted is not pair.left
        assert len(injected) == 10
        for fault in injected:
            assert fault.relation == pair.left.name
            assert fault.kind in CORRUPTION_KINDS
            value = corrupted.column(fault.attribute)[fault.row]
            if fault.kind == "nan":
                assert np.isnan(value)
            elif fault.kind in ("posinf", "neginf"):
                assert np.isinf(value)
            else:
                assert abs(value) > 1e9

    def test_input_relation_is_not_mutated(self):
        pair = generate_pair("independent", 60, 3, selectivity=0.1, seed=7)
        originals = {
            name: pair.left.column(name).copy()
            for name in pair.left.schema.names
        }
        plan(seed=3, corrupt_fraction=0.2).corrupt_relation(pair.left, 0)
        for name, column in originals.items():
            np.testing.assert_array_equal(pair.left.column(name), column)

    def test_sides_draw_independent_schedules(self):
        pair = generate_pair("independent", 100, 3, selectivity=0.1, seed=7)
        p = plan(seed=3, corrupt_fraction=0.1)
        _, left_faults = p.corrupt_relation(pair.left, 0)
        _, right_faults = p.corrupt_relation(pair.left, 1)
        assert [f.row for f in left_faults] != [f.row for f in right_faults]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_replays_identical_corruption(self, seed):
        pair = generate_pair("independent", 80, 3, selectivity=0.1, seed=5)
        p1 = plan(seed=seed, corrupt_fraction=0.1)
        p2 = plan(seed=seed, corrupt_fraction=0.1)
        _, first = p1.corrupt_relation(pair.left, 0)
        _, second = p2.corrupt_relation(pair.left, 0)
        assert first == second


class TestRegionFailures:
    def test_zero_rates_never_fail(self):
        p = plan()
        assert not any(p.region_fails(rid, 1) for rid in range(50))

    def test_draws_are_order_independent(self):
        p = plan(seed=11, region_failure_rate=0.3, persistent_failure_rate=0.1)
        sites = [(rid, attempt) for rid in range(30) for attempt in (1, 2, 3)]
        forward = {site: p.region_fails(*site) for site in sites}
        backward = {site: p.region_fails(*site) for site in reversed(sites)}
        assert forward == backward

    def test_persistent_failure_hits_every_attempt(self):
        p = plan(seed=11, persistent_failure_rate=1.0)
        assert all(p.region_fails(rid, attempt)
                   for rid in range(10) for attempt in (1, 2, 3))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_verdicts(self, seed):
        p1 = plan(seed=seed, region_failure_rate=0.4)
        p2 = plan(seed=seed, region_failure_rate=0.4)
        for rid in range(40):
            assert p1.region_fails(rid, 1) == p2.region_fails(rid, 1)


class TestStragglers:
    def test_zero_rate_always_on_time(self):
        p = plan()
        assert all(p.straggler_factor_for(rid) == 1.0 for rid in range(50))

    def test_factor_is_binary_and_deterministic(self):
        p = plan(seed=13, straggler_rate=0.5, straggler_factor=6.0)
        factors = [p.straggler_factor_for(rid) for rid in range(100)]
        assert set(factors) == {1.0, 6.0}
        assert factors == [p.straggler_factor_for(rid) for rid in range(100)]

    def test_rate_one_makes_every_region_a_straggler(self):
        p = plan(seed=13, straggler_rate=1.0, straggler_factor=3.0)
        assert all(p.straggler_factor_for(rid) == 3.0 for rid in range(20))
