"""Epoch-level replay and sanitisation in the continuous engine."""

import numpy as np
import pytest

from repro.contracts import c2
from repro.core import CAQEConfig
from repro.core.continuous import ContinuousCAQE
from repro.datagen import generate_pair
from repro.errors import RegionFailure
from repro.query import reference_evaluate, subspace_workload
from repro.relation import Relation
from repro.robustness.faults import FaultConfig, FaultPlan
from repro.robustness.recovery import RetryPolicy


def _slice(relation: Relation, start: int, stop: int) -> Relation:
    return relation.take(np.arange(start, stop), name=relation.name)


def _corrupt_rows(relation: Relation, rows, attribute) -> Relation:
    columns = {
        name: np.array(relation.column(name), copy=True)
        for name in relation.schema.names
    }
    columns[attribute][list(rows)] = np.nan
    return Relation(relation.name, relation.schema, columns)


@pytest.fixture(scope="module")
def workload():
    return subspace_workload(4, priority_scheme="uniform")


@pytest.fixture(scope="module")
def contracts(workload):
    return {q.name: c2(scale=1000.0) for q in workload}


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 90, 4, selectivity=0.08, seed=61)


def feed(engine, pair, chunks=((0, 30), (30, 60), (60, 90))):
    epochs = []
    for start, stop in chunks:
        epochs.append(
            engine.process_epoch(
                left_delta=_slice(pair.left, start, stop),
                right_delta=_slice(pair.right, start, stop),
            )
        )
    return epochs


class TestEpochReplay:
    def test_transient_failures_are_replayed_within_the_epoch(
        self, workload, contracts, pair
    ):
        plan = FaultPlan(FaultConfig(seed=3, region_failure_rate=0.3))
        engine = ContinuousCAQE(
            workload,
            contracts,
            CAQEConfig(
                enable_recovery=True,
                # Enough attempts that no region plausibly exhausts them
                # (0.3^12): every failure resolves by replay, none by
                # quarantine, so the answer must be exact.
                retry_policy=RetryPolicy(max_attempts=12),
                fault_plan=plan,
            ),
        )
        epochs = feed(engine, pair)
        assert sum(e.region_retries for e in epochs) > 0
        assert engine.stats.regions_quarantined == 0
        # Replay converges: the cumulative skyline still matches the
        # clean reference after every epoch.
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            assert engine.current_skyline(query.name) == ref.skyline_pairs

    def test_failure_without_recovery_propagates(
        self, workload, contracts, pair
    ):
        plan = FaultPlan(FaultConfig(seed=3, region_failure_rate=1.0))
        engine = ContinuousCAQE(
            workload, contracts, CAQEConfig(fault_plan=plan)
        )
        with pytest.raises(RegionFailure):
            feed(engine, pair, chunks=((0, 30),))

    def test_exhausted_retries_quarantine_but_epoch_completes(
        self, workload, contracts, pair
    ):
        plan = FaultPlan(FaultConfig(seed=3, persistent_failure_rate=0.3))
        engine = ContinuousCAQE(
            workload,
            contracts,
            CAQEConfig(
                enable_recovery=True,
                retry_policy=RetryPolicy(max_attempts=2),
                fault_plan=plan,
            ),
        )
        epochs = feed(engine, pair)
        assert sum(e.regions_quarantined for e in epochs) > 0
        assert engine.stats.regions_quarantined > 0

    def test_same_fault_seed_replays_identical_epochs(
        self, workload, contracts, pair
    ):
        def run():
            plan = FaultPlan(
                FaultConfig(
                    seed=5, region_failure_rate=0.2, persistent_failure_rate=0.1
                )
            )
            engine = ContinuousCAQE(
                workload,
                contracts,
                CAQEConfig(enable_recovery=True, fault_plan=plan),
            )
            feed(engine, pair)
            return (
                {q.name: engine.current_skyline(q.name) for q in workload},
                engine.stats.summary(),
            )

        assert run() == run()


class TestEpochSanitize:
    def test_dirty_delta_is_quarantined_per_epoch(
        self, workload, contracts, pair
    ):
        engine = ContinuousCAQE(
            workload, contracts, CAQEConfig(enable_sanitize=True)
        )
        measure = pair.left.schema.measure_names[0]
        dirty = _corrupt_rows(_slice(pair.left, 0, 30), [3, 7], measure)
        engine.process_epoch(
            left_delta=dirty, right_delta=_slice(pair.right, 0, 30)
        )
        assert engine.stats.tuples_quarantined == 2
        (key,) = engine.quarantine
        assert key.endswith("@epoch1")
        # The engine's answer matches the reference over the clean rows.
        clean_left = _slice(pair.left, 0, 30).take(
            [i for i in range(30) if i not in (3, 7)]
        )
        for query in workload:
            ref = reference_evaluate(
                query, clean_left, _slice(pair.right, 0, 30)
            )
            assert engine.current_skyline(query.name) == ref.skyline_pairs

    def test_clean_epochs_record_nothing(self, workload, contracts, pair):
        engine = ContinuousCAQE(
            workload, contracts, CAQEConfig(enable_sanitize=True)
        )
        feed(engine, pair)
        assert engine.stats.tuples_quarantined == 0
        assert engine.quarantine == {}
