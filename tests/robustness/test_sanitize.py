"""Unit tests for the input sanitizer (robustness layer, §9)."""

import numpy as np
import pytest

from repro.errors import DataError, ExecutionError
from repro.relation import Relation, Role, Schema
from repro.robustness.sanitize import (
    QuarantineReport,
    sanitize_relation,
)


def make_relation(prices, ratings=None, name="Hotels"):
    prices = np.asarray(prices, dtype=float)
    if ratings is None:
        ratings = np.arange(len(prices), dtype=float)
    schema = Schema.of(price=Role.MEASURE, rating=Role.MEASURE, city=Role.JOIN)
    return Relation(
        name,
        schema,
        {
            "price": prices,
            "rating": np.asarray(ratings, dtype=float),
            "city": np.arange(len(prices)),
        },
    )


class TestCleanInput:
    def test_clean_relation_is_returned_unchanged(self):
        rel = make_relation([1.0, 2.0, 3.0])
        clean, report = sanitize_relation(rel)
        assert clean is rel
        assert not report
        assert report.rows_scanned == 3
        assert report.rows_dropped == 0
        assert report.rows_kept == 3

    def test_empty_relation_is_a_noop(self):
        rel = make_relation([])
        clean, report = sanitize_relation(rel)
        assert clean is rel
        assert report.rows_scanned == 0


class TestQuarantine:
    def test_nan_inf_and_domain_rows_are_dropped(self):
        rel = make_relation([1.0, np.nan, np.inf, -np.inf, 1e12, 2.0])
        clean, report = sanitize_relation(rel)
        assert clean.cardinality == 2
        np.testing.assert_array_equal(clean.column("price"), [1.0, 2.0])
        assert report.rows_dropped == 4
        assert report.counts_by_reason() == {"nan": 1, "inf": 2, "domain": 1}

    def test_report_records_row_attribute_and_reason(self):
        rel = make_relation([1.0, np.nan, 2.0])
        _, report = sanitize_relation(rel)
        (record,) = report.quarantined
        assert (record.row, record.attribute, record.reason) == (1, "price", "nan")

    def test_first_violation_per_row_in_schema_order(self):
        # Row 0 is bad in both measures; the earlier schema column wins.
        rel = make_relation([np.nan], ratings=[np.inf])
        _, report = sanitize_relation(rel)
        (record,) = report.quarantined
        assert record.attribute == "price"
        assert record.reason == "nan"

    def test_domain_limit_is_configurable(self):
        rel = make_relation([5.0, 50.0])
        clean, report = sanitize_relation(rel, domain_limit=10.0)
        assert clean.cardinality == 1
        assert report.counts_by_reason() == {"domain": 1}

    def test_join_columns_are_not_inspected(self):
        schema = Schema.of(price=Role.MEASURE, city=Role.JOIN)
        rel = Relation(
            "H",
            schema,
            {"price": np.array([1.0]), "city": np.array([10**12])},
        )
        clean, report = sanitize_relation(rel)
        assert clean is rel
        assert not report


class TestRaiseMode:
    def test_raise_mode_raises_data_error(self):
        rel = make_relation([1.0, np.nan])
        with pytest.raises(DataError, match="corrupted"):
            sanitize_relation(rel, on_violation="raise")

    def test_raise_mode_passes_clean_data(self):
        rel = make_relation([1.0, 2.0])
        clean, _ = sanitize_relation(rel, on_violation="raise")
        assert clean is rel

    def test_unknown_disposition_rejected(self):
        rel = make_relation([1.0])
        with pytest.raises(ExecutionError, match="disposition"):
            sanitize_relation(rel, on_violation="ignore")

    def test_non_positive_domain_limit_rejected(self):
        rel = make_relation([1.0])
        with pytest.raises(ExecutionError, match="domain_limit"):
            sanitize_relation(rel, domain_limit=0.0)


class TestReportShape:
    def test_bool_reflects_quarantine(self):
        assert not QuarantineReport(relation="R")
        _, report = sanitize_relation(make_relation([np.nan]))
        assert report
