"""Tests for the motivating-application domain datasets."""

import numpy as np
import pytest

from repro.datagen import domains


@pytest.mark.parametrize(
    "factory,join_attr",
    [
        (domains.hotels, "city"),
        (domains.tours, "city"),
        (domains.retailers, "country"),
        (domains.transporters, "country"),
        (domains.quotes, "ticker"),
        (domains.sentiment, "ticker"),
    ],
)
class TestDomainTables:
    def test_cardinality(self, factory, join_attr):
        assert factory(37, seed=1).cardinality == 37

    def test_deterministic(self, factory, join_attr):
        a, b = factory(50, seed=9), factory(50, seed=9)
        for name in a.schema.names:
            np.testing.assert_array_equal(a.column(name), b.column(name))

    def test_join_attr_is_code(self, factory, join_attr):
        rel = factory(100, seed=2)
        codes = rel.column(join_attr)
        assert codes.min() >= 0
        assert codes.max() < 10  # all vocabularies have 10 entries

    def test_has_measures(self, factory, join_attr):
        rel = factory(10, seed=3)
        assert len(rel.schema.measure_names) >= 3


class TestJoinability:
    def test_hotels_tours_share_cities(self):
        hotels = domains.hotels(200, seed=1)
        tours = domains.tours(200, seed=2)
        shared = set(hotels.column("city")) & set(tours.column("city"))
        assert shared, "travel-planner join would be empty"

    def test_retailers_transporters_share_countries_and_parts(self):
        ret = domains.retailers(200, seed=1)
        trans = domains.transporters(200, seed=2)
        assert set(ret.column("country")) & set(trans.column("country"))
        assert set(ret.column("part")) & set(trans.column("part"))

    def test_smaller_is_better_encoding(self):
        """Ratings/sights are negated so minimisation prefers the best."""
        hotels = domains.hotels(100, seed=4)
        neg = hotels.column("neg_rating")
        assert neg.min() >= 0.0 and neg.max() <= 4.0  # ratings 1..5
