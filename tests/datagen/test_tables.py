"""Tests for benchmark table-pair generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.tables import (
    generate_pair,
    generate_table,
    join_domain_size,
    join_names,
    measure_names,
    table_schema,
)
from repro.errors import ReproError
from repro.relation import Role


class TestJoinDomainSize:
    @pytest.mark.parametrize(
        "selectivity,expected",
        [(1.0, 1), (0.1, 10), (0.01, 100), (1e-4, 10000)],
    )
    def test_inverts_selectivity(self, selectivity, expected):
        assert join_domain_size(selectivity) == expected

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ReproError):
            join_domain_size(bad)


class TestSchema:
    def test_names(self):
        assert measure_names(3) == ("m1", "m2", "m3")
        assert join_names(2) == ("jc1", "jc2")

    def test_roles(self):
        schema = table_schema(2, 2)
        assert schema.measure_names == ("m1", "m2")
        assert schema.join_names == ("jc1", "jc2")
        assert schema.attribute("jc1").role is Role.JOIN


class TestGeneratePair:
    def test_cardinalities_match(self):
        pair = generate_pair("independent", 100, 3, seed=1)
        assert pair.left.cardinality == pair.right.cardinality == 100
        assert pair.cardinality == 100

    def test_names(self):
        pair = generate_pair("independent", 10, 2, seed=1)
        assert pair.left.name == "R" and pair.right.name == "T"

    def test_tables_are_independent(self):
        pair = generate_pair("independent", 200, 2, seed=1)
        assert not np.array_equal(pair.left.column("m1"), pair.right.column("m1"))

    def test_deterministic(self):
        a = generate_pair("correlated", 60, 3, seed=5)
        b = generate_pair("correlated", 60, 3, seed=5)
        np.testing.assert_array_equal(a.left.column("m2"), b.left.column("m2"))
        np.testing.assert_array_equal(a.right.column("jc1"), b.right.column("jc1"))

    def test_join_values_within_domain(self):
        pair = generate_pair("independent", 300, 2, selectivity=0.1, seed=2)
        domain = join_domain_size(0.1)
        for rel in (pair.left, pair.right):
            values = rel.column("jc1")
            assert values.min() >= 0 and values.max() < domain

    def test_empirical_selectivity_close(self):
        """The realised equi-join selectivity should track the request."""
        target = 0.02
        pair = generate_pair("independent", 800, 2, selectivity=target, seed=3)
        left = pair.left.column("jc1")
        right = pair.right.column("jc1")
        matches = sum(np.count_nonzero(right == v) for v in left)
        realised = matches / (len(left) * len(right))
        assert realised == pytest.approx(target, rel=0.25)

    def test_measures_follow_requested_range(self):
        pair = generate_pair("anticorrelated", 150, 4, seed=4)
        for name in measure_names(4):
            col = pair.left.column(name)
            assert col.min() >= 1.0 and col.max() <= 100.0


@given(
    joins=st.integers(min_value=1, max_value=3),
    dims=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=10, deadline=None)
def test_property_schema_width(joins, dims):
    table = generate_table("X", "independent", 20, dims, joins=joins, seed=0)
    assert len(table.schema) == dims + joins
