"""Tests for the benchmark attribute distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import distributions as dist
from repro.errors import ReproError


@pytest.mark.parametrize("name", dist.DISTRIBUTIONS)
class TestCommonProperties:
    def test_shape(self, name):
        data = dist.generate(name, 100, 4, seed=1)
        assert data.shape == (100, 4)

    def test_value_range(self, name):
        data = dist.generate(name, 500, 3, seed=2)
        assert data.min() >= dist.VALUE_LOW
        assert data.max() <= dist.VALUE_HIGH

    def test_custom_range(self, name):
        data = dist.generate(name, 200, 2, low=0.0, high=1.0, seed=3)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_deterministic_with_seed(self, name):
        a = dist.generate(name, 50, 3, seed=42)
        b = dist.generate(name, 50, 3, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, name):
        a = dist.generate(name, 50, 3, seed=1)
        b = dist.generate(name, 50, 3, seed=2)
        assert not np.array_equal(a, b)

    def test_zero_cardinality(self, name):
        assert dist.generate(name, 0, 3, seed=1).shape == (0, 3)

    def test_negative_cardinality_raises(self, name):
        with pytest.raises(ReproError):
            dist.generate(name, -1, 3)

    def test_zero_dimensions_raises(self, name):
        with pytest.raises(ReproError):
            dist.generate(name, 10, 0)


class TestCorrelationStructure:
    """The three distributions must actually differ in correlation sign."""

    @staticmethod
    def _mean_pairwise_corr(data):
        corr = np.corrcoef(data, rowvar=False)
        d = corr.shape[0]
        off = corr[~np.eye(d, dtype=bool)]
        return off.mean()

    def test_correlated_is_positively_correlated(self):
        data = dist.correlated(3000, 3, seed=5)
        assert self._mean_pairwise_corr(data) > 0.5

    def test_anticorrelated_is_negatively_correlated(self):
        data = dist.anticorrelated(3000, 3, seed=5)
        assert self._mean_pairwise_corr(data) < -0.1

    def test_independent_is_uncorrelated(self):
        data = dist.independent(3000, 3, seed=5)
        assert abs(self._mean_pairwise_corr(data)) < 0.1

    def test_skyline_size_ordering(self):
        """corr << independent << anti-corr skyline sizes (§7.1)."""
        from repro.skyline import bnl_skyline

        sizes = {}
        for name in dist.DISTRIBUTIONS:
            data = dist.generate(name, 1000, 3, seed=9)
            sizes[name] = len(bnl_skyline(data))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]

    def test_unknown_distribution_raises(self):
        with pytest.raises(ReproError, match="unknown distribution"):
            dist.generate("zipfian", 10, 2)


@given(
    cardinality=st.integers(min_value=1, max_value=200),
    dimensions=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_all_distributions_within_bounds(cardinality, dimensions, seed):
    for name in dist.DISTRIBUTIONS:
        data = dist.generate(name, cardinality, dimensions, seed=seed)
        assert data.shape == (cardinality, dimensions)
        assert np.all(data >= dist.VALUE_LOW)
        assert np.all(data <= dist.VALUE_HIGH)
