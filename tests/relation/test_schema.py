"""Unit tests for schemas and attributes."""

import pytest

from repro.errors import SchemaError
from repro.relation import Attribute, Role, Schema


class TestAttribute:
    def test_default_role_is_measure(self):
        assert Attribute("price").role is Role.MEASURE

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_non_string_name(self):
        with pytest.raises(SchemaError):
            Attribute(7)  # type: ignore[arg-type]

    def test_is_hashable_and_comparable(self):
        assert Attribute("a") == Attribute("a")
        assert hash(Attribute("a")) == hash(Attribute("a"))
        assert Attribute("a") != Attribute("a", Role.JOIN)


class TestSchema:
    def test_preserves_order(self):
        schema = Schema([Attribute("b"), Attribute("a")])
        assert schema.names == ("b", "a")

    def test_of_builder(self):
        schema = Schema.of(price=Role.MEASURE, city=Role.JOIN, label=Role.PAYLOAD)
        assert schema.names == ("price", "city", "label")
        assert schema.attribute("city").role is Role.JOIN

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("x"), Attribute("x")])

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_non_attribute(self):
        with pytest.raises(SchemaError):
            Schema(["price"])  # type: ignore[list-item]

    def test_position_lookup(self):
        schema = Schema.of(a=Role.MEASURE, b=Role.JOIN)
        assert schema.position("b") == 1

    def test_position_unknown_raises(self):
        schema = Schema.of(a=Role.MEASURE)
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema.position("zzz")

    def test_role_filters(self):
        schema = Schema.of(m1=Role.MEASURE, j1=Role.JOIN, p1=Role.PAYLOAD, m2=Role.MEASURE)
        assert schema.measure_names == ("m1", "m2")
        assert schema.join_names == ("j1",)

    def test_contains_len_iter(self):
        schema = Schema.of(a=Role.MEASURE, b=Role.JOIN)
        assert "a" in schema and "zzz" not in schema
        assert len(schema) == 2
        assert [attr.name for attr in schema] == ["a", "b"]

    def test_equality_and_hash(self):
        s1 = Schema.of(a=Role.MEASURE, b=Role.JOIN)
        s2 = Schema.of(a=Role.MEASURE, b=Role.JOIN)
        s3 = Schema.of(b=Role.JOIN, a=Role.MEASURE)
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3  # order matters
