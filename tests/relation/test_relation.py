"""Unit tests for the column-oriented relation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relation import Attribute, Relation, Role, Schema, concat


@pytest.fixture
def schema():
    return Schema.of(price=Role.MEASURE, city=Role.JOIN)


@pytest.fixture
def rel(schema):
    return Relation(
        "Hotels",
        schema,
        {"price": np.array([10.0, 20.0, 30.0]), "city": np.array([1, 2, 1])},
    )


class TestConstruction:
    def test_cardinality(self, rel):
        assert rel.cardinality == 3
        assert len(rel) == 3

    def test_missing_column_raises(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            Relation("H", schema, {"price": np.array([1.0])})

    def test_extra_column_raises(self, schema):
        with pytest.raises(SchemaError, match="extra"):
            Relation(
                "H",
                schema,
                {
                    "price": np.array([1.0]),
                    "city": np.array([1]),
                    "bogus": np.array([0]),
                },
            )

    def test_ragged_columns_raise(self, schema):
        with pytest.raises(SchemaError, match="rows"):
            Relation(
                "H", schema, {"price": np.array([1.0, 2.0]), "city": np.array([1])}
            )

    def test_two_dimensional_column_raises(self, schema):
        with pytest.raises(SchemaError, match="1-dimensional"):
            Relation(
                "H",
                schema,
                {"price": np.ones((2, 2)), "city": np.array([1, 2])},
            )

    def test_columns_are_read_only(self, rel):
        with pytest.raises(ValueError):
            rel.column("price")[0] = 99.0

    def test_from_rows(self, schema):
        rel = Relation.from_rows("H", schema, [(10.0, 1), (20.0, 2)])
        assert rel.cardinality == 2
        assert rel.row(1) == (20.0, 2)

    def test_from_rows_empty(self, schema):
        rel = Relation.from_rows("H", schema, [])
        assert rel.cardinality == 0

    def test_from_rows_empty_pins_float64(self, schema):
        rel = Relation.from_rows("H", schema, [])
        for name in schema.names:
            assert rel.column(name).dtype == np.float64
            assert rel.column(name).shape == (0,)

    def test_from_rows_wrong_width(self, schema):
        with pytest.raises(SchemaError, match="values"):
            Relation.from_rows("H", schema, [(1.0,)])


class TestAccess:
    def test_column(self, rel):
        np.testing.assert_array_equal(rel.column("city"), [1, 2, 1])

    def test_unknown_column_raises(self, rel):
        with pytest.raises(SchemaError):
            rel.column("nope")

    def test_columns_matrix(self, rel):
        matrix = rel.columns(["price", "city"])
        assert matrix.shape == (3, 2)
        np.testing.assert_array_equal(matrix[:, 1], [1, 2, 1])

    def test_row(self, rel):
        assert rel.row(0) == (10.0, 1)

    def test_take(self, rel):
        subset = rel.take([2, 0])
        assert subset.cardinality == 2
        np.testing.assert_array_equal(subset.column("price"), [30.0, 10.0])

    def test_take_renames(self, rel):
        assert rel.take([0], name="sub").name == "sub"


class TestConcat:
    def test_concat(self, rel, schema):
        other = Relation.from_rows("H2", schema, [(5.0, 3)])
        merged = concat("all", [rel, other])
        assert merged.cardinality == 4
        assert merged.row(3) == (5.0, 3)

    def test_concat_empty_list_raises(self):
        with pytest.raises(SchemaError):
            concat("x", [])

    def test_concat_schema_mismatch_raises(self, rel):
        other = Relation.from_rows(
            "T", Schema.of(other=Role.MEASURE), [(1.0,)]
        )
        with pytest.raises(SchemaError):
            concat("x", [rel, other])
