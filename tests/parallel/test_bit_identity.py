"""Bit-identity of the parallel engine (docs/ARCHITECTURE.md §11).

The deterministic-commit protocol promises that ``workers`` is a pure
wall-clock knob: every modelled observable — region trace, skyline and
coarse comparison counts, virtual time, reported identity sets, contract
satisfaction — must be *identical* for workers ∈ {0, 1, 2, 4}, and a
repeated run at the same setting must reproduce itself exactly.

The fixed scenarios pin the two paper workload shapes (Figure 1 and the
subspace lattice); the hypothesis property fuzzes random workloads,
join-condition mixes, and filters over random seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.query import random_workload
from repro.query.workload import subspace_workload

#: Worker counts exercised everywhere; 0 is the serial reference engine.
WORKER_GRID = (0, 1, 2, 4)

#: Every deterministic counter of ExecutionStats that the contract model
#: reads (wall-clock channels — region_durations, phase totals — are
#: deliberately excluded: they measure speed, not behaviour).
STAT_FIELDS = (
    "region_trace",
    "skyline_comparisons",
    "coarse_comparisons",
    "elapsed",
    "join_results",
    "join_probes",
    "results_reported",
)


def fingerprint(result):
    """Everything that must be bit-identical across worker counts."""
    stats = tuple(getattr(result.stats, f) for f in STAT_FIELDS)
    reported = {name: frozenset(pairs) for name, pairs in result.reported.items()}
    satisfaction = {q.name: result.satisfaction(q.name) for q in result.workload}
    return stats, reported, satisfaction, result.horizon


def run_once(pair, workload, contracts, workers):
    config = CAQEConfig(workers=workers)
    return CAQE(config).run(pair.left, pair.right, workload, contracts)


def assert_identical_across_workers(pair, workload, contracts):
    reference = fingerprint(run_once(pair, workload, contracts, 0))
    for workers in WORKER_GRID[1:]:
        observed = fingerprint(run_once(pair, workload, contracts, workers))
        assert observed == reference, f"workers={workers} diverged"
    return reference


class TestFixedScenarios:
    def test_subspace_workload_all_worker_counts(self):
        pair = generate_pair("independent", 200, 4, selectivity=0.05, seed=23)
        workload = subspace_workload(3, priority_scheme="uniform")
        contracts = {q.name: c2(scale=100.0) for q in workload}
        assert_identical_across_workers(pair, workload, contracts)

    def test_repeated_runs_reproduce(self):
        pair = generate_pair("anticorrelated", 150, 4, selectivity=0.08, seed=7)
        workload = random_workload(4, dims=4, seed=11)
        contracts = {q.name: c2(scale=200.0) for q in workload}
        first = fingerprint(run_once(pair, workload, contracts, 2))
        second = fingerprint(run_once(pair, workload, contracts, 2))
        assert first == second

    @pytest.mark.parametrize("workers", [1, 2])
    def test_filters_and_two_conditions(self, workers):
        pair = generate_pair(
            "independent", 120, 4, joins=2, selectivity=0.1, seed=5
        )
        workload = random_workload(
            4,
            dims=4,
            join_attrs=("jc1", "jc2"),
            filter_probability=0.6,
            seed=6,
        )
        contracts = {q.name: c2(scale=300.0) for q in workload}
        reference = fingerprint(run_once(pair, workload, contracts, 0))
        observed = fingerprint(run_once(pair, workload, contracts, workers))
        assert observed == reference


@given(
    seed=st.integers(0, 100_000),
    query_count=st.integers(1, 5),
    filter_probability=st.sampled_from([0.0, 0.5]),
    workers=st.sampled_from([1, 2, 4]),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_parallel_equals_serial(
    seed, query_count, filter_probability, workers
):
    pair = generate_pair("independent", 80, 4, selectivity=0.1, seed=seed)
    workload = random_workload(
        query_count,
        dims=4,
        filter_probability=filter_probability,
        seed=seed + 1,
    )
    contracts = {q.name: c2(scale=500.0) for q in workload}
    reference = fingerprint(run_once(pair, workload, contracts, 0))
    observed = fingerprint(run_once(pair, workload, contracts, workers))
    assert observed == reference
