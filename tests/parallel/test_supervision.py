"""The self-healing pool's supervision layer (docs/ARCHITECTURE.md §14).

Process-level tests use real ``SIGKILL``s through deterministic
:class:`~repro.robustness.faults.WorkerKillPlan` triggers — no mocks:
the pool under test loses actual worker processes and must requeue,
respawn, poison or degrade exactly as the contract says, without moving
a single engine observable (the kill-worker audit proves the same at
full scale; these tests pin the unit-level mechanics).
"""

import gc
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.errors import ExecutionError
from repro.parallel import PoolHealth, RegionPool, pack_prepared, packed_crc_ok
from repro.parallel.pool import _picklable
from repro.parallel.worker import PackedRegion, PreparedRegion
from repro.query import JoinCondition, Preference, SkylineJoinQuery, add
from repro.query.workload import Workload
from repro.robustness.faults import WorkerKillPlan


def small_pair(seed=23, n=80):
    return generate_pair("independent", n, 4, selectivity=0.1, seed=seed)


def small_workload():
    jc = JoinCondition.on("jc1", name="JC1")
    fns = (add("m1", "m1", "d1"), add("m2", "m2", "d2"))
    return Workload(
        [SkylineJoinQuery("Q1", jc, fns, Preference.over("d1", "d2"))]
    )


def run_engine(pair, workload, contracts, **config_kwargs):
    return CAQE(CAQEConfig(**config_kwargs)).run(
        pair.left, pair.right, workload, contracts
    )


@pytest.fixture(scope="module")
def scenario():
    pair = small_pair()
    workload = small_workload()
    contracts = {q.name: c2(scale=60.0) for q in workload}
    serial = run_engine(pair, workload, contracts, workers=0)
    return pair, workload, contracts, serial


def observables(result):
    return (
        tuple(result.stats.region_trace),
        result.stats.skyline_comparisons,
        result.stats.elapsed,
        result.reported,
        tuple(sorted(result.stats.summary().items())),
    )


# -- crash -> requeue -> respawn ----------------------------------------- #
class TestWorkerCrash:
    def test_killed_worker_is_respawned_and_task_requeued(self, scenario):
        pair, workload, contracts, serial = scenario
        result = run_engine(
            pair,
            workload,
            contracts,
            workers=2,
            pool_kill_plan=WorkerKillPlan(kills=((0, 1),)),
        )
        assert observables(result) == observables(serial)
        health = result.stats.pool_health
        assert health["restarts"] >= 1
        assert health["requeues"] >= 1
        assert health["workers_alive"] >= 1
        assert health["degraded"] is False
        # Respawn backoff accrues on the pool-local diagnostic channel,
        # never on the run's clock (that would break bit-identity).
        assert health["restart_backoff"] > 0.0

    def test_no_fault_plan_means_zero_supervision_counters(self, scenario):
        pair, workload, contracts, serial = scenario
        result = run_engine(pair, workload, contracts, workers=2)
        assert observables(result) == observables(serial)
        health = result.stats.pool_health
        assert health["restarts"] == 0
        assert health["requeues"] == 0
        assert health["poison_regions"] == 0
        assert health["corrupt_payloads"] == 0
        assert "pool" not in result.quarantine

    def test_total_worker_loss_degrades_to_serial(self, scenario):
        pair, workload, contracts, serial = scenario
        result = run_engine(
            pair,
            workload,
            contracts,
            workers=2,
            pool_restart_budget=1,
            pool_kill_plan=WorkerKillPlan(kill_all_after=1),
        )
        assert observables(result) == observables(serial)
        health = result.stats.pool_health
        assert health["degraded"] is True
        assert health["workers_alive"] == 0
        assert health["restarts"] == 1

    def test_zero_restart_budget_is_allowed(self, scenario):
        pair, workload, contracts, serial = scenario
        result = run_engine(
            pair,
            workload,
            contracts,
            workers=2,
            pool_restart_budget=0,
            pool_kill_plan=WorkerKillPlan(kill_all_after=1),
        )
        assert observables(result) == observables(serial)
        assert result.stats.pool_health["restarts"] == 0


# -- poison-region quarantine -------------------------------------------- #
class TestPoisonRegion:
    def test_worker_killer_region_is_quarantined(self, scenario):
        pair, workload, contracts, serial = scenario
        target = serial.stats.region_trace[0]
        result = run_engine(
            pair,
            workload,
            contracts,
            workers=2,
            pool_restart_budget=6,
            pool_kill_plan=WorkerKillPlan(poison_regions=(target,)),
        )
        assert observables(result) == observables(serial)
        health = result.stats.pool_health
        assert health["poison_regions"] == 1
        report = result.quarantine["pool"]
        assert report.relation == "region-pool"
        assert [t.row for t in report.quarantined] == [target]
        assert report.quarantined[0].reason == "poison"


# -- corrupt payloads ------------------------------------------------------ #
class TestPayloadChecksum:
    def test_crc_roundtrip(self):
        prepared = PreparedRegion(
            region_id=7,
            left_idx=np.arange(5, dtype=np.int64),
            right_idx=np.arange(5, 10, dtype=np.int64),
            matrix=np.ones((5, 2)),
        )
        packed = pack_prepared(prepared)
        assert packed_crc_ok(packed)

    def test_corrupt_payload_fails_verification(self):
        prepared = PreparedRegion(
            region_id=7,
            left_idx=np.arange(5, dtype=np.int64),
            right_idx=np.arange(5, 10, dtype=np.int64),
            matrix=None,
        )
        packed = pack_prepared(prepared)
        mangled = PackedRegion(
            region_id=packed.region_id,
            rows=packed.rows,
            width=packed.width,
            payload=packed.payload[:-1] + bytes([packed.payload[-1] ^ 0xFF]),
            crc=packed.crc,
        )
        assert not packed_crc_ok(mangled)

    def test_pool_drops_corrupt_payload_and_driver_prepares_inline(self):
        pair = small_pair(seed=5, n=40)
        pool = RegionPool(pair.left, pair.right, workers=1)
        try:
            # Forge a result whose bytes do not match the stamped CRC, as
            # a worker dying mid-serialisation would leave them.
            mangled = PackedRegion(
                region_id=3, rows=1, width=-1,
                payload=b"\x00" * 16, crc=0xDEADBEEF,
            )
            client = pool.client()
            pool._pending.add((client._client_id, 3))
            pool._results.put((0, client._client_id, 3, mangled))
            deadline = time.time() + 5.0
            while time.time() < deadline:
                pool._drain()
                if pool.health().corrupt_payloads:
                    break
                time.sleep(0.01)
            health = pool.health()
            assert health.corrupt_payloads == 1
            # The task is no longer pending: fetch resolves immediately
            # to None and the driver prepares inline.
            assert client.fetch(3) is None
        finally:
            pool.close()


# -- worker error surfacing ------------------------------------------------ #
class TestWorkerErrors:
    def test_error_reprs_are_counted_and_sampled(self):
        pair = small_pair(seed=5, n=40)
        pool = RegionPool(pair.left, pair.right, workers=1)
        try:
            client = pool.client()
            key = (client._client_id, 9)
            pool._pending.add(key)
            pool._results.put(
                (0, key[0], 9, "ValueError('worker exploded')")
            )
            deadline = time.time() + 5.0
            while time.time() < deadline:
                pool._drain()
                if pool.health().worker_errors:
                    break
                time.sleep(0.01)
            health = pool.health()
            assert health.worker_errors == 1
            assert health.error_samples == (
                (key[0], 9, "ValueError('worker exploded')"),
            )
            # Only the first repr per region is retained.
            pool._pending.add(key)
            pool._results.put((0, key[0], 9, "ValueError('again')"))
            deadline = time.time() + 5.0
            while time.time() < deadline:
                pool._drain()
                if pool.health().worker_errors == 2:
                    break
                time.sleep(0.01)
            health = pool.health()
            assert health.worker_errors == 2
            assert health.error_samples[0][2] == "ValueError('worker exploded')"
        finally:
            pool.close()


# -- shared-memory lifecycle ----------------------------------------------- #
class TestSharedMemoryLifecycle:
    def test_close_releases_segments_after_worker_sigkill(self):
        from multiprocessing import shared_memory

        pair = small_pair(seed=9, n=40)
        pool = RegionPool(pair.left, pair.right, workers=2)
        try:
            names = pool._store.segment_names()
            assert names, "shared-memory pool must create segments"
            # SIGKILL one worker mid-life, the hard way.
            victim = pool._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
        finally:
            pool.close()
        assert pool._store is None
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_segment_names_empty_after_close(self):
        pair = small_pair(seed=9, n=40)
        pool = RegionPool(pair.left, pair.right, workers=1)
        store = pool._store
        pool.close()
        assert store.segment_names() == []


# -- satellite regressions ------------------------------------------------- #
class TestSetWorkloadMemo:
    def test_new_workload_recomputed_even_if_id_is_recycled(self):
        pair = small_pair(seed=3, n=40)
        pool = RegionPool(pair.left, pair.right, workers=1)
        try:
            client = pool.client()
            workload = small_workload()
            client.set_workload(workload)
            stale_id = id(workload)
            first_functions = client._functions
            # Drop the workload and try to land a different one on the
            # recycled address — the historic id()-keyed memo would then
            # silently keep the stale function tuple.
            del workload
            gc.collect()
            jc = JoinCondition.on("jc1", name="JC1")
            fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in (1, 2, 3))
            replacement = None
            for _ in range(64):
                candidate = Workload(
                    [
                        SkylineJoinQuery(
                            "Q1", jc, fns, Preference.over("d1", "d2", "d3")
                        )
                    ]
                )
                if id(candidate) == stale_id:
                    replacement = candidate
                    break
                del candidate
            if replacement is None:
                replacement = Workload(
                    [
                        SkylineJoinQuery(
                            "Q1", jc, fns, Preference.over("d1", "d2", "d3")
                        )
                    ]
                )
            client.set_workload(replacement)
            # The memo must recognise a *different* workload object and
            # re-derive its function tuple (3 output dims, not 2).
            assert client._workload is replacement
            if client._functions is not None:
                assert len(client._functions) == 3
            assert client._functions is not first_functions or (
                first_functions is None and client._functions is None
            )
        finally:
            pool.close()

    def test_same_workload_object_is_memoised(self):
        pair = small_pair(seed=3, n=40)
        pool = RegionPool(pair.left, pair.right, workers=1)
        try:
            client = pool.client()
            workload = small_workload()
            client.set_workload(workload)
            first = client._functions
            client.set_workload(workload)
            assert client._functions is first
        finally:
            pool.close()


class TestPicklableHardening:
    def test_recursion_error_degrades_to_driver_projection(self):
        class Bomb:
            def __reduce__(self):
                raise RecursionError("self-referential mapping")

        assert _picklable(Bomb()) is False

    def test_value_error_degrades_to_driver_projection(self):
        class Bomb:
            def __reduce__(self):
                raise ValueError("unpicklable by fiat")

        assert _picklable(Bomb()) is False

    def test_plain_values_still_pickle(self):
        assert _picklable(("a", 1, 2.0)) is True


# -- config and plan validation -------------------------------------------- #
class TestConfigValidation:
    def test_negative_restart_budget_rejected(self):
        with pytest.raises(ExecutionError):
            CAQEConfig(pool_restart_budget=-1)

    def test_zero_poison_threshold_rejected(self):
        with pytest.raises(ExecutionError):
            CAQEConfig(pool_poison_threshold=0)

    def test_kill_plan_validation(self):
        with pytest.raises(ExecutionError):
            WorkerKillPlan(kills=((0, 0),))
        with pytest.raises(ExecutionError):
            WorkerKillPlan(kill_all_after=0)

    def test_seeded_plan_is_deterministic_and_kills_worker_zero(self):
        plan_a = WorkerKillPlan.seeded(17, 4)
        plan_b = WorkerKillPlan.seeded(17, 4)
        assert plan_a == plan_b
        assert plan_a.kill_after_for(0) == 1
        assert plan_a.active

    def test_inactive_plan(self):
        assert not WorkerKillPlan().active


class TestPoolHealthSnapshot:
    def test_health_is_a_plain_dict_roundtrip(self):
        pair = small_pair(seed=7, n=40)
        with RegionPool(pair.left, pair.right, workers=1) as pool:
            health = pool.health()
            assert isinstance(health, PoolHealth)
            as_dict = health.as_dict()
            assert as_dict["workers_alive"] == 1
            assert as_dict["degraded"] is False
            # The snapshot must survive a pickle (served over APIs).
            assert pickle.loads(pickle.dumps(health)) == health
