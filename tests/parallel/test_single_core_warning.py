"""The single-core pool footgun warning (docs/ARCHITECTURE.md §14).

Requesting a worker pool on a one-core host only buys IPC overhead, so
the engine notes it — as a structured entry on the stats wall-channel,
never on stdout, and never inside :meth:`ExecutionStats.summary` (the
run fingerprint must not depend on the host's core count).
"""

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.query.workload import subspace_workload


def _run(workers):
    pair = generate_pair("independent", 80, 4, selectivity=0.1, seed=3)
    workload = subspace_workload(2, priority_scheme="uniform")
    contracts = {q.name: c2(scale=100.0) for q in workload}
    return CAQE(CAQEConfig(workers=workers)).run(
        pair.left, pair.right, workload, contracts
    )


def test_single_core_pool_warns(monkeypatch):
    monkeypatch.setattr("repro.core.caqe.os.cpu_count", lambda: 1)
    result = _run(workers=2)
    assert {
        "kind": "single_core_pool",
        "workers": 2,
        "cpu_count": 1,
    } in result.stats.runtime_warnings
    # Wall-channel only: the warning never enters the summary fingerprint.
    assert "runtime_warnings" not in result.stats.summary()


def test_unknown_core_count_warns(monkeypatch):
    # os.cpu_count() may return None; treat it as a single-core host.
    monkeypatch.setattr("repro.core.caqe.os.cpu_count", lambda: None)
    result = _run(workers=2)
    kinds = [w["kind"] for w in result.stats.runtime_warnings]
    assert "single_core_pool" in kinds


def test_multi_core_pool_is_silent(monkeypatch):
    monkeypatch.setattr("repro.core.caqe.os.cpu_count", lambda: 4)
    result = _run(workers=2)
    assert result.stats.runtime_warnings == []


def test_serial_run_never_warns(monkeypatch):
    monkeypatch.setattr("repro.core.caqe.os.cpu_count", lambda: 1)
    result = _run(workers=0)
    assert result.stats.runtime_warnings == []
