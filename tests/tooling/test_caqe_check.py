"""Fixture tests for the ``tools.caqe_check`` static-analysis suite.

Each rule CQ001–CQ009 is exercised three ways:

* a **violating** fixture written under a tmpdir whose layout mimics the
  real tree (``repro/core/...``) so the path-fragment scoping triggers;
* a **clean** fixture using the blessed spelling;
* a **suppressed** fixture carrying ``# caqe-check: disable=RULE``.

A final test runs the linter over the live ``src/repro`` tree and asserts
it is violation-free — the same gate CI enforces.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.caqe_check.cli import main as caqe_check_main  # noqa: E402
from tools.caqe_check.engine import run_checks  # noqa: E402
from tools.caqe_check.report import render_report  # noqa: E402


def lint(tmp_path, relpath, source, *, select=None, docs_text=None):
    """Write ``source`` at ``tmp_path/relpath`` and lint just that tree."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    docs_path = None
    if docs_text is not None:
        docs_path = tmp_path / "ARCHITECTURE.md"
        docs_path.write_text(docs_text, encoding="utf-8")
    return run_checks(
        [tmp_path],
        docs_path=docs_path,
        select={select} if select else None,
    )


def codes(violations):
    return [v.code for v in violations]


# ------------------------------------------------------------------ #
# CQ001 — RNG discipline
# ------------------------------------------------------------------ #
class TestCQ001:
    def test_fires_on_stdlib_and_numpy_random(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            import random
            from random import shuffle

            import numpy as np


            def draw():
                return np.random.default_rng(0).random()
            """,
            select="CQ001",
        )
        assert codes(found) == ["CQ001", "CQ001", "CQ001"]

    def test_clean_when_using_ensure_rng(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            from repro.rng import ensure_rng


            def draw(seed):
                return ensure_rng(seed).random()
            """,
            select="CQ001",
        )
        assert found == []

    def test_rng_module_itself_is_exempt(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/rng.py",
            "import numpy as np\n\nrng = np.random.default_rng(0)\n",
            select="CQ001",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            "import random  # caqe-check: disable=CQ001\n",
            select="CQ001",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ002 — dominance discipline
# ------------------------------------------------------------------ #
class TestCQ002:
    def test_fires_on_inline_tuple_dominance(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            import numpy as np


            def dominated(a, b):
                return np.all(a <= b) and np.any(a < b)
            """,
            select="CQ002",
        )
        assert codes(found) == ["CQ002"]

    def test_fires_on_staged_local_variables(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/plan/mod.py",
            """\
            import numpy as np


            def dominated(a, b):
                le = np.all(a <= b, axis=1)
                lt = np.any(a < b, axis=1)
                return le & lt
            """,
            select="CQ002",
        )
        assert codes(found) == ["CQ002"]

    def test_clean_when_calling_shared_helper(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            from repro.skyline.dominance import dominates


            def dominated(a, b, counter):
                return dominates(a, b, counter=counter)
            """,
            select="CQ002",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            import numpy as np


            def dominated(a, b):
                # caqe-check: disable=CQ002
                return np.all(a <= b) and np.any(a < b)
            """,
            select="CQ002",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ003 — iteration-order hygiene
# ------------------------------------------------------------------ #
class TestCQ003:
    def test_fires_on_set_and_keys_iteration(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def schedule(pending, table):
                out = []
                for rid in pending | {0}:
                    out.append(rid)
                for key in table.keys():
                    out.append(key)
                return out
            """,
            select="CQ003",
        )
        assert codes(found) == ["CQ003", "CQ003"]

    def test_fires_via_set_bound_local(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def schedule(items):
                live = {i for i in items}
                return [x for x in live]
            """,
            select="CQ003",
        )
        assert codes(found) == ["CQ003"]

    def test_sorted_wrapper_is_clean(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def schedule(pending):
                return [rid for rid in sorted(pending)]
            """,
            select="CQ003",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def schedule(pending):
                out = []
                for rid in pending & {1, 2}:  # caqe-check: disable=CQ003
                    out.append(rid)
                return out
            """,
            select="CQ003",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ004 — config-flag registry
# ------------------------------------------------------------------ #
_CONFIG_SRC = """\
from dataclasses import dataclass


@dataclass
class CAQEConfig:
    divisions: int = 4
    enable_widget: bool = True


def use(config):
    return config.divisions
"""


class TestCQ004:
    def test_fires_on_unread_and_undocumented_field(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/config.py",
            _CONFIG_SRC,
            select="CQ004",
            docs_text="Only `divisions` is documented here.",
        )
        messages = [v.message for v in found]
        assert codes(found) == ["CQ004", "CQ004"]
        assert any("never read" in m for m in messages)
        assert any("not mentioned" in m for m in messages)

    def test_clean_when_read_and_documented(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/config.py",
            _CONFIG_SRC.replace(
                "return config.divisions",
                "return config.divisions and config.enable_widget",
            ),
            select="CQ004",
            docs_text="`divisions` and `enable_widget` are documented.",
        )
        assert found == []

    def test_pragma_on_definition_line_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/config.py",
            _CONFIG_SRC.replace(
                "enable_widget: bool = True",
                "enable_widget: bool = True  # caqe-check: disable=CQ004",
            ),
            select="CQ004",
            docs_text="Only `divisions` is documented here.",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ005 — float-equality lint
# ------------------------------------------------------------------ #
class TestCQ005:
    def test_fires_on_float_literal_equality(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/contracts/mod.py",
            """\
            def stale(weight, offset):
                return weight == 0.0 or offset != -1.5
            """,
            select="CQ005",
        )
        assert codes(found) == ["CQ005", "CQ005"]

    def test_threshold_comparison_is_clean(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/contracts/mod.py",
            """\
            def stale(weight):
                return weight <= 0.0
            """,
            select="CQ005",
        )
        assert found == []

    def test_integer_equality_is_out_of_scope(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/contracts/mod.py",
            "def is_root(mask):\n    return mask == 0\n",
            select="CQ005",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/contracts/mod.py",
            """\
            def stale(weight):
                return weight == 0.0  # caqe-check: disable=CQ005
            """,
            select="CQ005",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ006 — exception discipline
# ------------------------------------------------------------------ #
class TestCQ006:
    def test_fires_on_bare_and_broad_except(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/robustness/mod.py",
            """\
            def recover(fn):
                try:
                    return fn()
                except Exception:
                    return None


            def swallow(fn):
                try:
                    return fn()
                except:
                    return None
            """,
            select="CQ006",
        )
        assert codes(found) == ["CQ006", "CQ006"]

    def test_fires_on_broad_class_inside_tuple(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def recover(fn):
                try:
                    return fn()
                except (ValueError, Exception):
                    return None
            """,
            select="CQ006",
        )
        assert codes(found) == ["CQ006"]

    def test_clean_when_catching_repro_error_subclass(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/robustness/mod.py",
            """\
            from repro.errors import RegionFailure


            def recover(fn):
                try:
                    return fn()
                except RegionFailure:
                    return None
            """,
            select="CQ006",
        )
        assert found == []

    def test_clean_when_handler_reraises(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def cleanup_then_propagate(fn, release):
                try:
                    return fn()
                except Exception:
                    release()
                    raise
            """,
            select="CQ006",
        )
        assert found == []

    def test_out_of_tree_files_are_not_flagged(self, tmp_path):
        found = lint(
            tmp_path,
            "scripts/mod.py",
            """\
            def recover(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
            select="CQ006",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def recover(fn):
                try:
                    return fn()
                except Exception:  # caqe-check: disable=CQ006
                    return None
            """,
            select="CQ006",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ007 — wall-clock ban
# ------------------------------------------------------------------ #
class TestCQ007:
    def test_fires_on_time_imports_and_calls(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            """\
            import time
            from time import sleep


            def stamp():
                return time.monotonic()
            """,
            select="CQ007",
        )
        assert codes(found) == ["CQ007", "CQ007", "CQ007"]

    def test_fires_on_datetime_now(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            import datetime


            def stamp():
                return datetime.datetime.now()
            """,
            select="CQ007",
        )
        assert codes(found) == ["CQ007", "CQ007"]

    def test_virtual_clock_usage_is_clean(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            from repro.core.clock import VirtualClock


            def charge(stats, cost):
                stats.clock.advance(cost)
                return stats.clock.now()
            """,
            select="CQ007",
        )
        assert found == []

    def test_clock_module_itself_is_exempt(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/clock.py",
            "import time\n\n\ndef wall():\n    return time.time()\n",
            select="CQ007",
        )
        assert found == []

    def test_journal_module_is_exempt(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/durability/journal.py",
            "import time\n",
            select="CQ007",
        )
        assert found == []

    def test_out_of_tree_files_are_not_flagged(self, tmp_path):
        found = lint(
            tmp_path,
            "bench/mod.py",
            "import time\n\n\ndef wall():\n    return time.time()\n",
            select="CQ007",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            "import time  # caqe-check: disable=CQ007\n",
            select="CQ007",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ008 — process parallelism only via the deterministic region pool
# ------------------------------------------------------------------ #
class TestCQ008:
    def test_fires_on_pool_imports_and_fork(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            import os


            def fan_out():
                return os.fork()
            """,
            select="CQ008",
        )
        assert codes(found) == ["CQ008", "CQ008", "CQ008"]

    def test_fires_on_multiprocessing_submodule(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            "from multiprocessing import shared_memory\n",
            select="CQ008",
        )
        assert codes(found) == ["CQ008"]

    def test_parallel_package_is_exempt(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/parallel/pool.py",
            """\
            import multiprocessing
            from multiprocessing import shared_memory
            """,
            select="CQ008",
        )
        assert found == []

    def test_threading_and_pool_usage_are_clean(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            """\
            import threading

            from repro.parallel import RegionPool


            def serve(left, right, workers):
                return RegionPool(left, right, workers=workers)
            """,
            select="CQ008",
        )
        assert found == []

    def test_out_of_tree_files_are_not_flagged(self, tmp_path):
        found = lint(
            tmp_path,
            "bench/mod.py",
            "import multiprocessing\n",
            select="CQ008",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            "import multiprocessing  # caqe-check: disable=CQ008\n",
            select="CQ008",
        )
        assert found == []


# ------------------------------------------------------------------ #
# CQ009 — per-row loops over relation columns in the hot path
# ------------------------------------------------------------------ #
class TestCQ009:
    def test_fires_on_tolist_and_column_iteration(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/executor.py",
            """\
            def commit(left_idx, relation):
                out = []
                for row in left_idx.tolist():
                    out.append(row)
                for value in relation.column("price"):
                    out.append(value)
                return out
            """,
            select="CQ009",
        )
        assert codes(found) == ["CQ009", "CQ009"]

    def test_fires_on_zip_wrapped_tolist_in_comprehension(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/parallel/joinkernel.py",
            """\
            def pairs(left, right):
                return [
                    (l, r)
                    for l, r in zip(left.tolist(), right.tolist())
                ]
            """,
            select="CQ009",
        )
        assert codes(found) == ["CQ009"]

    def test_fires_via_column_bound_local(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/executor.py",
            """\
            def walk(relation):
                prices = relation.column("price").tolist()
                return [p for p in prices]
            """,
            select="CQ009",
        )
        assert codes(found) == ["CQ009"]

    def test_array_program_is_clean(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/executor.py",
            """\
            import numpy as np


            def commit(matrix, masks):
                keep = np.flatnonzero(masks)
                for block in np.array_split(keep, 4):
                    matrix[block] += 1.0
                return matrix
            """,
            select="CQ009",
        )
        assert found == []

    def test_out_of_scope_modules_are_not_flagged(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/benefit.py",
            """\
            def walk(left_idx):
                return [row for row in left_idx.tolist()]
            """,
            select="CQ009",
        )
        assert found == []

    def test_fires_in_skyline_window_hot_sections(self, tmp_path):
        # The SoA window (docs/ARCHITECTURE.md §16) is hot-path scope: a
        # per-row walk over its flat columns reboxes every cell.
        found = lint(
            tmp_path,
            "repro/skyline/window.py",
            """\
            def insert_batch(store, live, size):
                charges = 0
                for row in store[:size].tolist():
                    charges += len(row)
                return charges
            """,
            select="CQ009",
        )
        assert codes(found) == ["CQ009"]

    def test_skyline_window_array_commit_is_clean(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/skyline/window.py",
            """\
            import numpy as np


            def commit(store, live, killed_rows):
                live[killed_rows] = False
                rows = np.flatnonzero(live)
                store[: len(rows)] = store[rows]
                return len(rows)
            """,
            select="CQ009",
        )
        assert found == []

    def test_skyline_window_side_table_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/skyline/window.py",
            """\
            def evict(key_list, rows):
                # Key side-table walk (Python objects, not column data).
                # caqe-check: disable=CQ009
                return [key_list[i] for i in rows.tolist()]
            """,
            select="CQ009",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/executor.py",
            """\
            def scalar_ablation(left_idx):
                out = []
                # caqe-check: disable=CQ009
                for row in left_idx.tolist():
                    out.append(row)
                return out
            """,
            select="CQ009",
        )
        assert found == []


class TestCQ013:
    def test_fires_on_bare_blocking_waits(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            """\
            def drain(work_queue, done_event, lock):
                item = work_queue.get()
                done_event.wait()
                lock.acquire()
                return item
            """,
            select="CQ013",
        )
        assert codes(found) == ["CQ013", "CQ013", "CQ013"]

    def test_fires_on_explicit_timeout_none(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            """\
            def drain(work_queue, done_event):
                item = work_queue.get(timeout=None)
                done_event.wait(timeout=None)
                return item
            """,
            select="CQ013",
        )
        assert codes(found) == ["CQ013", "CQ013"]

    def test_fires_on_blocking_get_spellings(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            """\
            def drain(work_queue):
                first = work_queue.get(True)
                second = work_queue.get(block=True)
                return first, second
            """,
            select="CQ013",
        )
        assert codes(found) == ["CQ013", "CQ013"]

    def test_bounded_and_nonblocking_waits_are_clean(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            """\
            def drain(work_queue, done_event, lock, metrics):
                item = work_queue.get(timeout=0.1)
                eager = work_queue.get(block=False)
                done_event.wait(timeout=0.1)
                done_event.wait(0.5)
                lock.acquire(timeout=1.0)
                lock.acquire(blocking=False)
                count = metrics.get("answered", 0)
                tier = metrics.get("tier")
                with lock:
                    pass
                return item, eager, count, tier
            """,
            select="CQ013",
        )
        assert found == []

    def test_scoped_to_serving_layer(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            def drain(work_queue):
                return work_queue.get()
            """,
            select="CQ013",
        )
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/serving/mod.py",
            """\
            def drain(work_queue):
                # caqe-check: disable=CQ013
                return work_queue.get()
            """,
            select="CQ013",
        )
        assert found == []


# ------------------------------------------------------------------ #
# Pragma placement + reporting + the live tree
# ------------------------------------------------------------------ #
class TestPragmasAndReport:
    def test_file_header_pragma_disables_whole_file(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            # caqe-check: disable=CQ001
            \"\"\"Module docstring.\"\"\"

            import random

            from random import shuffle
            """,
            select="CQ001",
        )
        assert found == []

    def test_disable_all_suppresses_every_rule(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            """\
            # caqe-check: disable=all
            import random

            def stale(weight):
                return weight == 0.0
            """,
        )
        assert found == []

    def test_report_rendering_is_sorted_and_counted(self, tmp_path):
        found = lint(
            tmp_path,
            "repro/core/mod.py",
            "import random\nfrom random import shuffle\n",
            select="CQ001",
        )
        report = render_report(found)
        lines = report.splitlines()
        assert lines[-1] == "caqe-check: 2 violation(s)"
        assert lines == sorted(lines[:-1]) + [lines[-1]]

    def test_clean_report(self):
        assert render_report([]) == "caqe-check: clean"


class TestLiveTree:
    def test_src_repro_is_violation_free(self, capsys):
        """The shipped tree passes its own linter (the CI gate)."""
        status = caqe_check_main([str(REPO_ROOT / "src" / "repro")])
        out = capsys.readouterr().out
        assert status == 0, f"caqe-check reported violations:\n{out}"
        assert "caqe-check: clean" in out
