"""Tests for the whole-program analysis layer of ``tools.caqe_check``.

Covers the interprocedural engine (CQ010 worker purity, CQ011 layer
contracts, CQ012 determinism taint) on the committed fixture trees under
``tests/tooling/fixtures/``, the CQ000 syntax-error diagnostic, pragma
edge cases around decorated definitions, the byte-identical determinism
of the effect fixpoint, the content-hash summary cache, and the
machine-readable report formats.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.caqe_check import effects  # noqa: E402
from tools.caqe_check.cli import main as caqe_check_main  # noqa: E402
from tools.caqe_check.engine import collect_files, run_checks  # noqa: E402
from tools.caqe_check.graph import ProgramGraph, module_name_for  # noqa: E402
from tools.caqe_check.report import render_json, render_sarif  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fresh_analysis():
    """Clear the in-memory memo so each call rebuilds from the AST."""
    effects._MEMO.clear()


def lint_tree(root, *, select=None, allow_syntax_errors=False):
    fresh_analysis()
    effects.configure_cache(None)
    return run_checks(
        [root],
        select={select} if select else None,
        allow_syntax_errors=allow_syntax_errors,
    )


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def codes(violations):
    return [v.code for v in violations]


# ------------------------------------------------------------------ #
# CQ010 — worker purity on the committed fixture tree
# ------------------------------------------------------------------ #
class TestCQ010:
    def test_fixture_mutation_fires_with_witness_chain(self):
        found = lint_tree(FIXTURES / "cq010_tree", select="CQ010")
        assert codes(found) == ["CQ010"]
        message = found[0].message
        assert "_record_progress" in message
        assert "MUTATES_NONLOCAL" in message
        assert "prepare_payload -> repro.parallel.worker:_record_progress" in message
        # Anchored at the offending def, not the call site or the root.
        assert found[0].line == 15

    def test_clean_worker_tree_passes(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/parallel/worker.py": """\
                import os


                def prepare_payload(region_id):
                    return region_id * 2


                def worker_main(region_id):
                    os.getppid()
                    return prepare_payload(region_id)
                """
            },
        )
        assert lint_tree(tmp_path, select="CQ010") == []

    def test_stale_allowlist_grant_is_reported(self, tmp_path):
        # worker_main without the getppid watchdog: the audited IO grant
        # no longer matches a direct effect, so the grant itself fires.
        write_tree(
            tmp_path,
            {
                "repro/parallel/worker.py": """\
                def prepare_payload(region_id):
                    return region_id


                def worker_main(region_id):
                    return prepare_payload(region_id)
                """
            },
        )
        found = lint_tree(tmp_path, select="CQ010")
        assert codes(found) == ["CQ010"]
        assert "stale purity-allowlist grant" in found[0].message

    def test_absent_roots_keep_rule_quiet(self, tmp_path):
        write_tree(
            tmp_path,
            {"repro/core/mod.py": "def run():\n    return 1\n"},
        )
        assert lint_tree(tmp_path, select="CQ010") == []

    def test_unseeded_rng_in_prepare_plane_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/parallel/worker.py": """\
                import os
                import random


                def prepare_payload(region_id):
                    return random.random()


                def worker_main(region_id):
                    os.getppid()
                    return prepare_payload(region_id)
                """
            },
        )
        found = lint_tree(tmp_path, select="CQ010")
        assert codes(found) == ["CQ010"]
        assert "UNSEEDED_RNG" in found[0].message


# ------------------------------------------------------------------ #
# CQ011 — layer contracts
# ------------------------------------------------------------------ #
class TestCQ011:
    def test_fixture_upward_import_fires(self):
        found = lint_tree(FIXTURES / "cq011_tree", select="CQ011")
        assert codes(found) == ["CQ011"]
        assert "upward import" in found[0].message
        assert "repro.relation.table" in found[0].message
        assert "repro.core.driver" in found[0].message

    def test_deferred_import_is_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/driver.py": "def commit_order(n):\n    return n\n",
                "repro/relation/table.py": """\
                def rows(count):
                    from repro.core.driver import commit_order

                    return commit_order(count)
                """,
            },
        )
        assert lint_tree(tmp_path, select="CQ011") == []

    def test_module_scope_cycle_fires_once(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/alpha.py": "from repro.core.beta import b\n\n\ndef a():\n    return b\n",
                "repro/core/beta.py": "from repro.core.alpha import a\n\n\ndef b():\n    return a\n",
            },
        )
        found = lint_tree(tmp_path, select="CQ011")
        assert codes(found) == ["CQ011"]
        assert "import cycle" in found[0].message
        assert "repro.core.alpha -> repro.core.beta -> repro.core.alpha" in (
            found[0].message
        )

    def test_submodule_import_through_package_is_precise(self, tmp_path):
        # ``from repro.skyline import dva`` depends on the submodule, not
        # the package __init__ — must not be reported as a cycle.
        write_tree(
            tmp_path,
            {
                "repro/skyline/__init__.py": "from repro.skyline.csc import c\n",
                "repro/skyline/dva.py": "def d():\n    return 1\n",
                "repro/skyline/csc.py": """\
                from repro.skyline import dva


                def c():
                    return dva.d()
                """,
            },
        )
        assert lint_tree(tmp_path, select="CQ011") == []


# ------------------------------------------------------------------ #
# CQ012 — determinism taint
# ------------------------------------------------------------------ #
class TestCQ012:
    def test_fixture_set_iteration_to_sort_key_fires(self):
        found = lint_tree(FIXTURES / "cq012_tree", select="CQ012")
        assert codes(found) == ["CQ012"]
        assert "sort key" in found[0].message

    def test_sorting_the_set_itself_is_clean(self, tmp_path):
        # ``sorted`` over an unordered collection is the *fix*, not a bug.
        write_tree(
            tmp_path,
            {
                "repro/core/scheduler.py": """\
                def schedule(names):
                    bucket = set(names)
                    return sorted(bucket)
                """
            },
        )
        assert lint_tree(tmp_path, select="CQ012") == []

    def test_sanitised_value_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/scheduler.py": """\
                def schedule(regions, names):
                    count = len(set(names))
                    return sorted(regions, key=lambda r: (count, r))
                """
            },
        )
        assert lint_tree(tmp_path, select="CQ012") == []

    def test_id_into_journal_record_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/durability/mod.py": """\
                class RegionJournal:
                    def append(self, record):
                        return record


                class Cursor:
                    def __init__(self, journal: RegionJournal):
                        self.journal = journal

                    def persist(self, region):
                        self.journal.append({"seq": id(region)})
                """
            },
        )
        found = lint_tree(tmp_path, select="CQ012")
        assert codes(found) == ["CQ012"]
        assert "journal" in found[0].message


# ------------------------------------------------------------------ #
# CQ000 — unparseable files
# ------------------------------------------------------------------ #
class TestCQ000:
    def test_syntax_error_is_reported(self, tmp_path):
        write_tree(
            tmp_path,
            {"repro/core/broken.py": "def broken(:\n    pass\n"},
        )
        found = lint_tree(tmp_path)
        assert "CQ000" in codes(found)
        assert any("does not parse" in v.message for v in found)

    def test_allow_syntax_errors_suppresses(self, tmp_path):
        write_tree(
            tmp_path,
            {"repro/core/broken.py": "def broken(:\n    pass\n"},
        )
        assert lint_tree(tmp_path, allow_syntax_errors=True) == []

    def test_select_other_rule_hides_cq000(self, tmp_path):
        write_tree(
            tmp_path,
            {"repro/core/broken.py": "def broken(:\n    pass\n"},
        )
        assert lint_tree(tmp_path, select="CQ001") == []

    def test_parseable_files_still_checked_alongside(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/broken.py": "def broken(:\n    pass\n",
                "repro/core/mod.py": "import random\n",
            },
        )
        found = lint_tree(tmp_path)
        assert "CQ000" in codes(found)
        assert "CQ001" in codes(found)


# ------------------------------------------------------------------ #
# Pragma edge cases
# ------------------------------------------------------------------ #
class TestPragmaEdgeCases:
    def test_standalone_pragma_above_decorator_covers_the_def(self, tmp_path):
        # CQ010 anchors at the def line; the pragma sits above the
        # decorator, two lines earlier.
        write_tree(
            tmp_path,
            {
                "repro/parallel/worker.py": """\
                import functools
                import os

                STATS = {"n": 0}


                # caqe-check: disable=CQ010
                @functools.lru_cache(maxsize=None)
                def _record(region_id):
                    STATS["n"] += 1
                    return region_id


                def prepare_payload(region_id):
                    return _record(region_id)


                def worker_main(region_id):
                    os.getppid()
                    return prepare_payload(region_id)
                """
            },
        )
        assert lint_tree(tmp_path, select="CQ010") == []

    def test_project_rule_pragma_on_def_line_in_other_file(self, tmp_path):
        # The CQ011 violation anchors in table.py while the graph spans
        # both files — suppression must consult the anchoring file.
        write_tree(
            tmp_path,
            {
                "repro/core/driver.py": "def commit_order(n):\n    return n\n",
                "repro/relation/table.py": """\
                from repro.core.driver import commit_order  # caqe-check: disable=CQ011


                def rows(count):
                    return commit_order(count)
                """,
            },
        )
        assert lint_tree(tmp_path, select="CQ011") == []

    def test_multi_code_pragma(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/mod.py": (
                    "import random  # caqe-check: disable=CQ001, CQ005\n"
                    "import time  # caqe-check: disable=CQ007,CQ008\n"
                )
            },
        )
        assert lint_tree(tmp_path) == []

    def test_pragma_on_last_line_without_trailing_newline(self, tmp_path):
        target = tmp_path / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import random  # caqe-check: disable=CQ001", encoding="utf-8"
        )
        assert lint_tree(tmp_path, select="CQ001") == []


# ------------------------------------------------------------------ #
# Determinism + summary cache
# ------------------------------------------------------------------ #
class TestDeterminismAndCache:
    def _files(self):
        files, errors = collect_files([REPO_ROOT / "src" / "repro"])
        assert errors == []
        return files

    def test_fixpoint_json_is_byte_identical_across_rebuilds(self):
        effects.configure_cache(None)
        files = self._files()
        fresh_analysis()
        first = effects.analyze_program(files).to_json()
        fresh_analysis()
        second = effects.analyze_program(files).to_json()
        assert first == second

    def test_disk_cache_round_trip(self, tmp_path):
        files = self._files()
        effects.configure_cache(tmp_path)
        fresh_analysis()
        built = effects.analyze_program(files).to_json()
        assert (tmp_path / "effects.json").exists()
        fresh_analysis()
        cached = effects.analyze_program(files).to_json()
        assert cached == built
        effects.configure_cache(None)

    def test_cache_key_tracks_source_content(self, tmp_path):
        write_tree(
            tmp_path / "tree",
            {"repro/core/mod.py": "def run():\n    return 1\n"},
        )
        files, _ = collect_files([tmp_path / "tree"])
        cache = tmp_path / "cache"
        effects.configure_cache(cache)
        fresh_analysis()
        effects.analyze_program(files)
        stale_key = json.loads(
            (cache / "effects.json").read_text(encoding="utf-8")
        )["key"]
        (tmp_path / "tree" / "repro" / "core" / "mod.py").write_text(
            "def run():\n    return 2\n", encoding="utf-8"
        )
        files, _ = collect_files([tmp_path / "tree"])
        fresh_analysis()
        effects.analyze_program(files)
        fresh_key = json.loads(
            (cache / "effects.json").read_text(encoding="utf-8")
        )["key"]
        assert fresh_key != stale_key
        effects.configure_cache(None)


# ------------------------------------------------------------------ #
# Graph plumbing
# ------------------------------------------------------------------ #
class TestGraph:
    def test_module_name_anchors_on_last_repro_segment(self):
        assert module_name_for("src/repro/core/caqe.py") == "repro.core.caqe"
        assert (
            module_name_for("tmp/repro/x/repro/core/mod.py")
            == "repro.core.mod"
        )
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert module_name_for("docs/notes.txt") is None

    def test_reachability_and_witness_are_deterministic(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/mod.py": """\
                def leaf():
                    return 1


                def mid():
                    return leaf()


                def root():
                    return mid() + leaf()
                """
            },
        )
        files, _ = collect_files([tmp_path])
        graph = ProgramGraph(files)
        reachable = graph.reachable_from(["repro.core.mod:root"])
        assert reachable == [
            "repro.core.mod:root",
            "repro.core.mod:leaf",
            "repro.core.mod:mid",
        ]
        assert graph.witness_path(
            ["repro.core.mod:root"], "repro.core.mod:leaf"
        ) == ["repro.core.mod:root", "repro.core.mod:leaf"]


# ------------------------------------------------------------------ #
# Report formats + CLI surface
# ------------------------------------------------------------------ #
class TestFormatsAndCli:
    def test_json_and_sarif_render_fixture_violation(self):
        found = lint_tree(FIXTURES / "cq010_tree", select="CQ010")
        payload = json.loads(render_json(found))
        assert payload["count"] == 1
        assert payload["violations"][0]["code"] == "CQ010"
        sarif = json.loads(render_sarif(found))
        results = sarif["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["CQ010"]
        rule_ids = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        assert {"CQ000", "CQ010", "CQ011", "CQ012"} <= rule_ids

    def test_cli_sarif_output_file(self, tmp_path, capsys):
        out = tmp_path / "report.sarif"
        status = caqe_check_main(
            [
                "--no-cache",
                "--format",
                "sarif",
                "--output",
                str(out),
                "--select",
                "CQ011",
                str(FIXTURES / "cq011_tree"),
            ]
        )
        capsys.readouterr()
        assert status == 1
        sarif = json.loads(out.read_text(encoding="utf-8"))
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"][0]["ruleId"] == "CQ011"

    def test_cli_max_seconds_budget_failure(self, tmp_path, capsys):
        write_tree(
            tmp_path, {"repro/core/mod.py": "def run():\n    return 1\n"}
        )
        status = caqe_check_main(
            ["--no-cache", "--max-seconds", "0", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert status == 1
        assert "budget" in out

    def test_cli_dump_summaries_stdout(self, capsys):
        status = caqe_check_main(
            [
                "--no-cache",
                "--dump-summaries",
                "-",
                str(FIXTURES / "cq010_tree"),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        payload = json.loads(out)
        assert "repro.parallel.worker:_record_progress" in payload["functions"]
