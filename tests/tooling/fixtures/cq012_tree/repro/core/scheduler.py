"""Seeded CQ012 violation: set-iteration value reaches a sort key.

``_first_of`` returns whichever element a ``set`` yields first — a value
whose identity depends on ``PYTHONHASHSEED``.  ``schedule`` (one call
hop away) folds that value into a ``sorted`` key, so the region order
itself becomes hash-seed dependent: exactly the interprocedural flow the
determinism-taint rule exists to catch.
"""


def _first_of(names):
    bucket = set(names)
    for member in bucket:
        return member
    return ""


def schedule(regions, names):
    pivot = _first_of(names)
    return sorted(regions, key=lambda region: (pivot, region))
