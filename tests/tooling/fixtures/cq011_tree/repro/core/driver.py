"""Upper-layer module for the CQ011 fixture (imported from below)."""


def commit_order(count):
    return list(range(count))
