"""Seeded CQ011 violation: the ``relation`` layer imports ``core``.

``relation`` sits near the bottom of the declared layer DAG and ``core``
near the top, so this module-scope import is an upward edge the layer
rule must reject (a function-scope import of the same symbol would be
exempt as a deferred edge).
"""

from repro.core.driver import commit_order


def rows(count):
    return commit_order(count)
