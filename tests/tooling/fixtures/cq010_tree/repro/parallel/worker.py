"""Seeded CQ010 violation: worker-reachable mutation of driver state.

``worker_main`` → ``prepare_payload`` → ``_record_progress`` — the last
hop increments a module-level counter, which the purity rule must flag
(anchored at ``_record_progress``'s def line, with the witness chain).
The ``os.getppid()`` watchdog read mirrors the live tree and is covered
by the audited allowlist grant on ``worker_main``.
"""

import os

DRIVER_STATS = {"prepared": 0}


def _record_progress(region_id):
    DRIVER_STATS["prepared"] += 1
    return region_id


def prepare_payload(region_id):
    return _record_progress(region_id)


def worker_main(region_id):
    os.getppid()
    return prepare_payload(region_id)
