"""Tests for the top-level package surface, errors, rng helpers, and CLI."""

import numpy as np
import pytest

import repro
from repro import errors
from repro.rng import DEFAULT_SEED, ensure_rng, spawn


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_headline_workflow_via_top_level_names(self):
        pair = repro.generate_pair("independent", 60, 3, selectivity=0.1, seed=1)
        workload = repro.subspace_workload(3)
        contracts = {q.name: repro.c1(1e9) for q in workload}
        result = repro.run_caqe(pair.left, pair.right, workload, contracts)
        assert result.average_satisfaction() == 1.0  # infinite deadline


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.QueryError,
            errors.ContractError,
            errors.PartitionError,
            errors.PlanError,
            errors.ExecutionError,
            errors.BenchmarkError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.PlanError("x")


class TestRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None).random(3)
        b = np.random.default_rng(DEFAULT_SEED).random(3)
        np.testing.assert_array_equal(a, b)

    def test_int_seed(self):
        np.testing.assert_array_equal(
            ensure_rng(5).random(3), np.random.default_rng(5).random(3)
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_spawn_independence(self):
        children = spawn(ensure_rng(7), 3)
        assert len(children) == 3
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_deterministic(self):
        a = [c.random(2).tolist() for c in spawn(ensure_rng(7), 2)]
        b = [c.random(2).tolist() for c in spawn(ensure_rng(7), 2)]
        assert a == b


class TestCli:
    def test_parser_builds(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(["figure9", "independent", "--contracts", "C1"])
        assert args.distribution == "independent"

    def test_table3_command(self, capsys):
        from repro.__main__ import main

        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "CAQE" in out and "Progressive" in out

    def test_cuboid_command(self, capsys):
        from repro.__main__ import main

        assert main(["cuboid"]) == 0
        assert "min-max cuboid" in capsys.readouterr().out

    def test_rejects_unknown_distribution(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9", "zipf"])
