"""Tests for the Buchta skyline-cardinality estimator (Equation 9)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.skyline.bnl import bnl_skyline
from repro.skyline.estimate import buchta_skyline_size, region_cardinality


class TestBuchtaFormula:
    def test_one_dimension_gives_one(self):
        """d=1: ln(n)^0 / 0! = 1 — a single minimum."""
        assert buchta_skyline_size(1000, 1) == 1.0

    def test_two_dimensions_is_log(self):
        assert buchta_skyline_size(math.e ** 3, 2) == pytest.approx(3.0)

    def test_matches_formula(self):
        n, d = 5000, 4
        expected = math.log(n) ** 3 / math.factorial(3)
        assert buchta_skyline_size(n, d) == pytest.approx(expected)

    def test_tiny_inputs(self):
        assert buchta_skyline_size(0, 3) == 0.0
        assert buchta_skyline_size(1, 3) == 1.0
        assert buchta_skyline_size(0.5, 3) == 0.5

    def test_invalid_dimension(self):
        with pytest.raises(ReproError):
            buchta_skyline_size(100, 0)

    def test_monotone_in_n(self):
        sizes = [buchta_skyline_size(n, 3) for n in (10, 100, 1000, 10000)]
        assert sizes == sorted(sizes)

    def test_monotone_in_d_for_large_n(self):
        sizes = [buchta_skyline_size(100000, d) for d in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)

    def test_estimates_real_independent_data_within_factor(self, rng):
        """Order-of-magnitude sanity on real uniform data."""
        n, d = 4000, 3
        pts = rng.random((n, d))
        actual = len(bnl_skyline(pts))
        estimate = buchta_skyline_size(n, d)
        assert estimate / 4 <= actual <= estimate * 4


class TestRegionCardinality:
    def test_applies_selectivity(self):
        full = region_cardinality(1.0, 100, 100, 2)
        tenth = region_cardinality(0.1, 100, 100, 2)
        assert tenth < full

    def test_zero_cells(self):
        assert region_cardinality(0.5, 0, 10, 3) == 0.0

    def test_invalid_selectivity(self):
        with pytest.raises(ReproError):
            region_cardinality(1.5, 10, 10, 2)

    def test_negative_counts(self):
        with pytest.raises(ReproError):
            region_cardinality(0.5, -1, 10, 2)


@given(
    n=st.floats(0, 1e9, allow_nan=False),
    d=st.integers(1, 6),
)
@settings(max_examples=100, deadline=None)
def test_property_estimate_nonnegative_and_bounded(n, d):
    est = buchta_skyline_size(n, d)
    assert est >= 0.0
    assert est <= max(n, 1.0) or n <= 1.0
