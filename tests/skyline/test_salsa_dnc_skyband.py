"""Tests for the extended skyline algorithm suite (SaLSa, D&C, k-skyband)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.dominance import ComparisonCounter, dominates
from repro.skyline.salsa import salsa_order, salsa_skyline
from repro.skyline.skyband import SkybandWindow, k_skyband


class TestSalsa:
    def test_agrees_with_bnl(self, rng):
        pts = rng.random((300, 3)) * 100
        result, examined = salsa_skyline(pts)
        assert result == bnl_skyline(pts)
        assert examined <= len(pts)

    def test_early_termination_on_dominant_point(self, rng):
        """A near-origin point lets SaLSa stop far before the end."""
        pts = rng.random((500, 3)) * 100 + 50
        pts[123] = [0.1, 0.2, 0.3]  # dominates everything with max < mins
        result, examined = salsa_skyline(pts)
        assert result == [123]
        assert examined < len(pts) / 2

    def test_order_ascending_min(self, rng):
        pts = rng.random((50, 4))
        order = salsa_order(pts)
        mins = pts[order].min(axis=1)
        assert np.all(np.diff(mins) >= 0)

    def test_subspace(self, rng):
        pts = rng.random((200, 4)) * 100
        result, _ = salsa_skyline(pts, dims=(1, 3))
        assert result == bnl_skyline(pts, dims=(1, 3))

    def test_empty(self):
        result, examined = salsa_skyline(np.empty((0, 2)))
        assert result == [] and examined == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            salsa_skyline(np.array([1.0, 2.0]))

    def test_counts_comparisons(self, rng):
        pts = rng.random((100, 2))
        counter = ComparisonCounter()
        salsa_skyline(pts, counter=counter)
        assert counter.comparisons > 0


class TestDivideAndConquer:
    @pytest.mark.parametrize("n", [0, 1, 5, 16, 17, 200])
    def test_agrees_with_bnl(self, n, rng):
        pts = rng.random((n, 3)) * 100
        assert dnc_skyline(pts) == bnl_skyline(pts)

    def test_subspace(self, rng):
        pts = rng.random((150, 4)) * 100
        for dims in [(0,), (2, 3), (0, 1, 2)]:
            assert dnc_skyline(pts, dims=dims) == bnl_skyline(pts, dims=dims)

    def test_tie_heavy_data(self):
        """Many duplicates on the split dimension (degenerate medians)."""
        pts = np.array([[1.0, float(i % 7)] for i in range(60)])
        assert dnc_skyline(pts) == bnl_skyline(pts)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            dnc_skyline(np.array([1.0]))

    def test_counts_comparisons(self, rng):
        pts = rng.random((100, 3))
        counter = ComparisonCounter()
        dnc_skyline(pts, counter=counter)
        assert counter.comparisons > 0


def brute_force_skyband(pts, k, dims=None):
    view = pts if dims is None else pts[:, list(dims)]
    out = []
    for i in range(len(pts)):
        dominators = sum(
            1 for j in range(len(pts)) if dominates(view[j], view[i])
        )
        if dominators < k:
            out.append(i)
    return out


class TestSkyband:
    def test_one_skyband_is_skyline(self, rng):
        pts = rng.random((150, 3)) * 100
        assert k_skyband(pts, 1) == bnl_skyline(pts)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_matches_brute_force(self, k, rng):
        pts = rng.random((120, 3)) * 100
        assert k_skyband(pts, k) == brute_force_skyband(pts, k)

    def test_band_grows_with_k(self, rng):
        pts = rng.random((150, 3)) * 100
        sizes = [len(k_skyband(pts, k)) for k in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)
        assert set(k_skyband(pts, 1)) <= set(k_skyband(pts, 2))

    def test_subspace(self, rng):
        pts = rng.random((100, 4)) * 100
        assert k_skyband(pts, 2, dims=(0, 2)) == brute_force_skyband(
            pts, 2, dims=(0, 2)
        )

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            k_skyband(np.ones((3, 2)), 0)

    def test_window_incremental(self):
        window = SkybandWindow(k=2)
        assert window.insert("a", np.array([3.0, 3.0]))
        assert window.insert("b", np.array([2.0, 2.0]))
        # 'c' dominated by both a and b -> out of the 2-skyband.
        assert not window.insert("c", np.array([4.0, 4.0]))
        # 'd' dominates a and b; 'a' now dominated by 2 points -> evicted.
        assert window.insert("d", np.array([1.0, 1.0]))
        assert set(window.keys) == {"b", "d"}

    def test_rejects_1d(self):
        with pytest.raises(ReproError):
            k_skyband(np.array([1.0]), 1)


@given(
    n=st.integers(0, 60),
    k=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_property_skyband_and_algorithms_consistent(n, k, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3)) * 100
    band = k_skyband(pts, k)
    assert band == brute_force_skyband(pts, k)
    if n:
        sky = bnl_skyline(pts)
        assert set(sky) <= set(band)
        assert dnc_skyline(pts) == sky
        assert salsa_skyline(pts)[0] == sky
