"""Tests for the compressed skycube."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.skyline.csc import CompressedSkycube
from repro.skyline.skycube import all_subspaces, compute_naive


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(99).random((120, 4)) * 100


@pytest.fixture(scope="module")
def csc(points):
    return CompressedSkycube.build(points)


@pytest.fixture(scope="module")
def full(points):
    return compute_naive(points)


class TestReconstruction:
    def test_every_subspace_reconstructs_exactly(self, csc, full):
        for sub in all_subspaces(4):
            assert csc.skyline(sub) == full.skyline(sub), sorted(sub)

    def test_compression_saves_entries(self, csc, full):
        assert csc.stored_entries < CompressedSkycube.full_entries(full)
        assert 0.0 < csc.compression_ratio(full) < 1.0

    def test_minimal_subspaces_are_minimal(self, csc, full):
        for row in range(5):
            for sub in csc.minimal_subspaces(row):
                assert row in full.skyline(sub)
                for drop in sub:
                    child = sub - {drop}
                    if child:
                        assert row not in full.skyline(child)

    def test_non_skyline_tuple_has_no_minimal_subspaces(self, csc, full):
        full_space = frozenset(range(4))
        outside = set(range(120)) - set(full.skyline(full_space))
        # A tuple outside the full-space skyline is outside every skyline.
        row = sorted(outside)[0]
        assert csc.minimal_subspaces(row) == set()


class TestValidation:
    def test_rejects_non_dva(self):
        pts = np.array([[1.0, 2.0], [1.0, 3.0]])
        with pytest.raises(ReproError, match="DVA"):
            CompressedSkycube.build(pts)

    def test_rejects_1d(self):
        with pytest.raises(ReproError):
            CompressedSkycube.build(np.array([1.0, 2.0]))

    def test_invalid_subspace_query(self, csc):
        with pytest.raises(ReproError):
            csc.skyline(set())
        with pytest.raises(ReproError):
            csc.skyline({9})

    def test_unknown_row(self, csc):
        with pytest.raises(ReproError):
            csc.minimal_subspaces(10**6)


@given(n=st.integers(0, 40), seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_property_csc_reconstructs_all_subspaces(n, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3)) * 100
    csc = CompressedSkycube.build(pts)
    full = compute_naive(pts)
    for sub in all_subspaces(3):
        assert csc.skyline(sub) == full.skyline(sub)
