"""Tests for the log-sampling skyline-cardinality estimator ([5])."""

import numpy as np
import pytest

from repro.datagen import distributions as dist
from repro.errors import ReproError
from repro.skyline.bnl import bnl_skyline
from repro.skyline.estimate import SampledSkylineEstimator, buchta_skyline_size


class TestFitAndPredict:
    def test_predict_interpolates_actual_size(self):
        pts = dist.independent(2000, 3, seed=3)
        est = SampledSkylineEstimator.fit(pts, seed=1)
        actual = len(bnl_skyline(pts))
        assert actual / 3 <= est.predict(2000) <= actual * 3

    def test_beats_buchta_on_anticorrelated(self):
        """Buchta assumes independence; anti-correlated skylines are far
        larger and the fitted model must track them better."""
        pts = dist.anticorrelated(1500, 3, seed=7)
        actual = len(bnl_skyline(pts))
        fitted = SampledSkylineEstimator.fit(pts, seed=1).predict(1500)
        buchta = buchta_skyline_size(1500, 3)
        assert abs(fitted - actual) < abs(buchta - actual)
        assert buchta < actual  # sanity: Buchta indeed underestimates here

    def test_beats_buchta_on_correlated(self):
        pts = dist.correlated(1500, 3, seed=7)
        actual = len(bnl_skyline(pts))
        fitted = SampledSkylineEstimator.fit(pts, seed=1).predict(1500)
        buchta = buchta_skyline_size(1500, 3)
        assert abs(fitted - actual) <= abs(buchta - actual)

    def test_subspace_fit(self):
        pts = dist.independent(800, 4, seed=5)
        est = SampledSkylineEstimator.fit(pts, dims=(0, 1), seed=1)
        actual = len(bnl_skyline(pts, dims=(0, 1)))
        assert actual / 3 <= est.predict(800) <= actual * 3

    def test_predict_monotone(self):
        pts = dist.independent(500, 3, seed=2)
        est = SampledSkylineEstimator.fit(pts, seed=1)
        values = [est.predict(n) for n in (10, 100, 1000, 10000)]
        assert values == sorted(values)

    def test_predict_tiny_inputs(self):
        est = SampledSkylineEstimator(2.0, 1.5)
        assert est.predict(0) == 0.0
        assert est.predict(1) == 1.0

    def test_deterministic_fit(self):
        pts = dist.independent(400, 3, seed=2)
        a = SampledSkylineEstimator.fit(pts, seed=9)
        b = SampledSkylineEstimator.fit(pts, seed=9)
        assert a.coefficient == b.coefficient and a.exponent == b.exponent


class TestValidation:
    def test_too_few_rows(self):
        with pytest.raises(ReproError):
            SampledSkylineEstimator.fit(np.ones((2, 2)))

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ReproError):
            SampledSkylineEstimator(-1.0, 1.0)

    def test_exponent_clamped_to_dimensionality(self):
        pts = dist.independent(600, 2, seed=4)
        est = SampledSkylineEstimator.fit(pts, seed=1)
        assert 0.0 <= est.exponent <= 2.0

    def test_repr_mentions_model(self):
        assert "ln(n)" in repr(SampledSkylineEstimator(1.0, 2.0))
