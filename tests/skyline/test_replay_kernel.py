"""Property tests: the ``replay`` batch kernel ≡ the ``rounds`` kernel.

``rounds`` is the reference batch kernel (a literal transliteration of
the scalar insert loop); ``replay`` is the vectorised kernel the parallel
engine selects (docs/ARCHITECTURE.md §11).  For any window seed and any
batch — including duplicates, known members, and mass evictions — the
two kernels must agree on admissions, duplicate flags, per-row eviction
keys *and their order*, the final window contents, and every charged
comparison (the Figure 10b metric).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline.dominance import ComparisonCounter
from repro.skyline.window import SkylineWindow


@st.composite
def kernel_cases(draw):
    """Grid-valued points (to provoke ties/dominance chains), split into
    window seed inserts and one batch with a known-member mask."""
    width = draw(st.integers(min_value=1, max_value=3))
    n_seed = draw(st.integers(min_value=0, max_value=12))
    n_batch = draw(st.integers(min_value=0, max_value=40))
    points = [
        np.array(
            draw(
                st.lists(
                    st.integers(0, 4).map(float),
                    min_size=width,
                    max_size=width,
                )
            )
        )
        for _ in range(n_seed + n_batch)
    ]
    known = [draw(st.booleans()) for _ in range(n_batch)]
    return points, n_seed, known, width


def _run_kernel(points, n_seed, known, width, kernel):
    counter = ComparisonCounter()
    window = SkylineWindow(counter=counter)
    for i in range(n_seed):
        window.insert(("seed", i), points[i])
    before = counter.comparisons
    batch = points[n_seed:]
    report = window.insert_batch(
        [("b", i) for i in range(len(batch))],
        np.asarray(batch, dtype=float).reshape(len(batch), width),
        known_member=np.array(known, dtype=bool),
        kernel=kernel,
    )
    final = window.vectors
    if final.size == 0:
        final = np.empty((0, width))
    return (
        report.admitted.tolist(),
        report.duplicate.tolist(),
        [[entry.key for entry in row] for row in report.evicted],
        list(window.keys),
        final,
        counter.comparisons - before,
    )


@given(case=kernel_cases())
@settings(max_examples=80, deadline=None)
def test_replay_matches_rounds(case):
    points, n_seed, known, width = case
    admitted_a, dup_a, evicted_a, keys_a, mat_a, charged_a = _run_kernel(
        points, n_seed, known, width, "rounds"
    )
    admitted_b, dup_b, evicted_b, keys_b, mat_b, charged_b = _run_kernel(
        points, n_seed, known, width, "replay"
    )
    assert admitted_a == admitted_b
    assert dup_a == dup_b
    assert evicted_a == evicted_b
    assert keys_a == keys_b
    assert np.array_equal(mat_a, mat_b)
    assert charged_a == charged_b
