"""Tests for the incremental skyline window."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline.dominance import ComparisonCounter, dominates
from repro.skyline.window import SkylineWindow


class TestBasicInsertion:
    def test_first_insert_admitted(self):
        window = SkylineWindow()
        outcome = window.insert("a", np.array([1.0, 2.0]))
        assert outcome.admitted and not outcome.evicted
        assert window.keys == ["a"]

    def test_dominated_insert_rejected(self):
        window = SkylineWindow()
        window.insert("a", np.array([1.0, 1.0]))
        outcome = window.insert("b", np.array([2.0, 2.0]))
        assert not outcome.admitted
        assert window.keys == ["a"]

    def test_dominating_insert_evicts(self):
        window = SkylineWindow()
        window.insert("a", np.array([2.0, 2.0]))
        window.insert("b", np.array([3.0, 1.0]))
        outcome = window.insert("c", np.array([1.0, 1.0]))
        assert outcome.admitted
        assert {e.key for e in outcome.evicted} == {"a", "b"}
        assert window.keys == ["c"]

    def test_incomparable_coexist(self):
        window = SkylineWindow()
        window.insert("a", np.array([1.0, 3.0]))
        window.insert("b", np.array([3.0, 1.0]))
        assert set(window.keys) == {"a", "b"}

    def test_duplicate_vector_kept(self):
        """Strict dominance cannot discard an equal point — ties co-exist."""
        window = SkylineWindow()
        window.insert("a", np.array([1.0, 1.0]))
        outcome = window.insert("b", np.array([1.0, 1.0]))
        assert outcome.admitted and outcome.duplicate
        assert set(window.keys) == {"a", "b"}

    def test_subspace_window_ignores_other_dims(self):
        window = SkylineWindow(dims=(0,))
        window.insert("a", np.array([1.0, 100.0]))
        outcome = window.insert("b", np.array([2.0, 0.0]))
        assert not outcome.admitted  # dominated on dim 0 alone


class TestKnownMemberInsertion:
    def test_admits_genuine_member(self):
        window = SkylineWindow()
        window.insert("a", np.array([1.0, 3.0]))
        outcome = window.insert_known_member("b", np.array([3.0, 1.0]))
        assert outcome.admitted
        assert set(window.keys) == {"a", "b"}

    def test_rejects_when_claim_is_false(self):
        """The Theorem-1 claim is verified for free during the eviction
        scan; a dominated point is rejected (DVA-violation safety net)."""
        window = SkylineWindow()
        window.insert("a", np.array([1.0, 1.0]))
        outcome = window.insert_known_member("b", np.array([5.0, 5.0]))
        assert not outcome.admitted
        assert window.keys == ["a"]

    def test_still_evicts_dominated(self):
        window = SkylineWindow()
        window.insert("a", np.array([3.0, 3.0]))
        outcome = window.insert_known_member("b", np.array([1.0, 1.0]))
        assert [e.key for e in outcome.evicted] == ["a"]

    def test_duplicate_kept(self):
        window = SkylineWindow()
        window.insert("a", np.array([2.0, 2.0]))
        outcome = window.insert_known_member("b", np.array([2.0, 2.0]))
        assert outcome.admitted and outcome.duplicate


class TestRemoveAndQueries:
    def test_remove_key(self):
        window = SkylineWindow()
        window.insert("a", np.array([1.0, 3.0]))
        window.insert("b", np.array([3.0, 1.0]))
        assert window.remove_key("a")
        assert window.keys == ["b"]
        assert not window.remove_key("a")

    def test_contains_key(self):
        window = SkylineWindow()
        window.insert("x", np.array([1.0]))
        assert window.contains_key("x")
        assert not window.contains_key("y")

    def test_vectors_shape(self):
        window = SkylineWindow(dims=(1,))
        assert window.vectors.shape == (0, 1)
        window.insert("a", np.array([9.0, 2.0]))
        np.testing.assert_array_equal(window.vectors, [[2.0]])

    def test_len_and_iter(self):
        window = SkylineWindow()
        window.insert("a", np.array([1.0, 3.0]))
        window.insert("b", np.array([3.0, 1.0]))
        assert len(window) == 2
        assert {e.key for e in window} == {"a", "b"}


class TestComparisonAccounting:
    def test_admission_charges_window_size(self):
        counter = ComparisonCounter()
        window = SkylineWindow(counter=counter)
        window.insert("a", np.array([1.0, 3.0]))  # empty window: 0
        window.insert("b", np.array([3.0, 1.0]))  # vs 1 entry
        window.insert("c", np.array([2.0, 2.0]))  # vs 2 entries
        assert counter.comparisons == 3

    def test_rejection_charges_up_to_first_dominator(self):
        counter = ComparisonCounter()
        window = SkylineWindow(counter=counter)
        window.insert("a", np.array([5.0, 5.0]))
        window.insert("b", np.array([1.0, 1.0]))  # evicts a; 1 comparison
        counter.comparisons = 0
        window.insert("c", np.array([2.0, 2.0]))  # rejected by b at pos 0
        assert counter.comparisons == 1


class TestGrowth:
    def test_capacity_growth_preserves_content(self):
        window = SkylineWindow()
        # Anti-correlated points on a line: all incomparable, window grows.
        for i in range(100):
            window.insert(i, np.array([float(i), float(100 - i)]))
        assert len(window) == 100
        assert window.contains_key(0) and window.contains_key(99)


@st.composite
def point_lists(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    return [
        np.array(
            draw(
                st.lists(
                    st.floats(0, 100, allow_nan=False), min_size=3, max_size=3
                )
            )
        )
        for _ in range(n)
    ]


@given(points=point_lists())
@settings(max_examples=60, deadline=None)
def test_property_window_is_skyline_of_inserted(points):
    """Window = exactly the non-dominated subset of everything inserted."""
    window = SkylineWindow()
    for i, p in enumerate(points):
        window.insert(i, p)
    expected = {
        i
        for i, p in enumerate(points)
        if not any(dominates(q, p) for q in points)
    }
    assert set(window.keys) == expected


@given(points=point_lists())
@settings(max_examples=40, deadline=None)
def test_property_window_is_an_antichain(points):
    window = SkylineWindow()
    for i, p in enumerate(points):
        window.insert(i, p)
    vectors = window.vectors
    for i in range(len(vectors)):
        for j in range(len(vectors)):
            if i != j:
                assert not dominates(vectors[i], vectors[j])
