"""Round-trip properties of the flat-array window (docs/ARCHITECTURE.md §16).

``dump_entries``/``load_entries`` is the frozen serialisation contract the
durability snapshots ride on.  The SoA rewrite must keep it exact through
every storage event the dump can straddle — geometric growth, tombstoned
rows, deferred compaction, hash-collision key scans — and through a real
journal checkpoint/resume.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import c2
from repro.core import CAQE, CAQEConfig
from repro.datagen import generate_pair
from repro.durability import resume_run
from repro.errors import QueryCancelled
from repro.query.workload import subspace_workload
from repro.skyline.window import SkylineWindow


class Collider:
    """Hashable key whose hash is constant: every instance collides.

    Forces the hash-column fast path of ``remove_key`` to fall through to
    the key side table, the worst case for the SoA layout.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: int) -> None:
        self.payload = payload

    def __hash__(self) -> int:
        return 7

    def __eq__(self, other) -> bool:
        return isinstance(other, Collider) and self.payload == other.payload

    def __repr__(self) -> str:
        return f"Collider({self.payload})"


def window_state(window: SkylineWindow):
    return (
        list(window.keys),
        window.vectors.tolist(),
        len(window),
        [(e.key, e.vector.tolist()) for e in window],
    )


def roundtrip(window: SkylineWindow) -> SkylineWindow:
    keys, rows = window.dump_entries()
    fresh = SkylineWindow(dims=window.dims)
    fresh.load_entries(keys, rows)
    return fresh


@st.composite
def window_scripts(draw):
    """A script of inserts and removals over grid-valued points.

    Grid values provoke dominance chains (mass evictions → tombstones)
    and the script lengths cross the initial capacity (16) so geometric
    growth boundaries are exercised; interleaved removals drive the
    deferred compaction threshold from both sides.
    """
    width = draw(st.integers(min_value=1, max_value=3))
    n_ops = draw(st.integers(min_value=0, max_value=60))
    ops = []
    for i in range(n_ops):
        if draw(st.booleans()):
            vec = draw(
                st.lists(
                    st.integers(0, 4).map(float),
                    min_size=width,
                    max_size=width,
                )
            )
            ops.append(("insert", i, vec))
        else:
            ops.append(("remove", draw(st.integers(0, max(i, 1))), None))
    return width, ops


def run_script(window: SkylineWindow, ops) -> None:
    for op, i, vec in ops:
        if op == "insert":
            window.insert(("k", i), np.asarray(vec))
        else:
            window.remove_key(("k", i))


class TestDumpLoadRoundTrip:
    @given(script=window_scripts())
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_preserves_contents_and_order(self, script):
        width, ops = script
        window = SkylineWindow()
        run_script(window, ops)
        restored = roundtrip(window)
        assert window_state(restored) == window_state(window)
        # The dump is a fixed point: dumping the restored window again
        # yields byte-equal keys and rows.
        assert restored.dump_entries() == window.dump_entries()

    @given(script=window_scripts())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_midway_then_same_tail(self, script):
        """Dump/load at an arbitrary cut must not disturb later behaviour:
        the restored window and the original charge identical comparisons
        and evict identical keys for the remaining script."""
        width, ops = script
        cut = len(ops) // 2
        window = SkylineWindow()
        run_script(window, ops[:cut])
        restored = roundtrip(window)
        run_script(window, ops[cut:])
        run_script(restored, ops[cut:])
        assert window_state(restored) == window_state(window)

    def test_empty_window_roundtrip(self):
        window = SkylineWindow()
        keys, rows = window.dump_entries()
        assert keys == [] and rows == []
        restored = roundtrip(window)
        assert len(restored) == 0
        assert list(restored.keys) == []
        assert restored.vectors.shape[0] == 0
        # And an emptied window (everything evicted) dumps empty too.
        window.insert("a", np.array([1.0, 1.0]))
        window.insert("b", np.array([0.0, 0.0]))  # evicts "a"
        window.remove_key("b")
        assert window.dump_entries() == ([], [])

    def test_growth_boundary_roundtrip(self):
        # Mutually incomparable points: the window grows monotonically
        # through several capacity doublings (16 -> 32 -> 64).
        window = SkylineWindow()
        n = 50
        for i in range(n):
            window.insert(i, np.array([float(i), float(n - i)]))
        assert len(window) == n
        restored = roundtrip(window)
        assert window_state(restored) == window_state(window)

    def test_compaction_boundary_roundtrip(self):
        window = SkylineWindow()
        n = 40
        for i in range(n):
            window.insert(i, np.array([float(i), float(n - i)]))
        # Remove well past the dead-fraction threshold so at least one
        # deferred compaction fires mid-removal.
        for i in range(0, n, 2):
            assert window.remove_key(i)
        survivors = [i for i in range(n) if i % 2]
        assert list(window.keys) == survivors
        restored = roundtrip(window)
        assert window_state(restored) == window_state(window)
        assert restored.dead_fraction == 0.0


class TestCollidingKeys:
    def test_collision_safe_membership_and_removal(self):
        window = SkylineWindow()
        keys = [Collider(i) for i in range(24)]
        for i, key in enumerate(keys):
            window.insert(key, np.array([float(i), float(24 - i)]))
        assert all(window.contains_key(k) for k in keys)
        assert not window.contains_key(Collider(99))
        assert not window.remove_key(Collider(99))
        # Remove every third key; the hash column narrows to *all* rows
        # (constant hash), so the side table must settle each lookup.
        for key in keys[::3]:
            assert window.remove_key(key)
        survivors = [k for i, k in enumerate(keys) if i % 3]
        assert list(window.keys) == survivors
        restored = roundtrip(window)
        assert window_state(restored) == window_state(window)

    @given(payloads=st.lists(st.integers(0, 9), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_colliding_duplicates_fuzz(self, payloads):
        window = SkylineWindow()
        expected: "dict[Collider, list[float]]" = {}
        for n, p in enumerate(payloads):
            key = Collider(p)
            vec = [float(p), float(10 - p), float(n % 3)]
            if key in expected:
                window.remove_key(key)
                del expected[key]
            outcome = window.insert(key, np.asarray(vec))
            if outcome.admitted:
                expected[key] = vec
            for entry in outcome.evicted:
                expected.pop(entry.key, None)
        assert set(window.keys) == set(expected)
        restored = roundtrip(window)
        assert window_state(restored) == window_state(window)


class StopAfter:
    def __init__(self, n: int) -> None:
        self.remaining = n

    def is_cancelled(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


class TestJournalResume:
    """Windows cross a real checkpoint (dump) and resume (load) intact."""

    @pytest.mark.parametrize("stop_at", [2, 9])
    def test_resume_restores_windows_bit_identically(self, tmp_path, stop_at):
        pair = generate_pair("independent", 80, 4, selectivity=0.06, seed=17)
        workload = subspace_workload(2, priority_scheme="uniform")
        contracts = {q.name: c2(scale=100.0) for q in workload}
        baseline = CAQE(CAQEConfig()).run(
            pair.left, pair.right, workload, contracts
        )
        journal_dir = tmp_path / f"stop-{stop_at}"
        config = CAQEConfig(
            enable_journal=True,
            journal_dir=str(journal_dir),
            checkpoint_every_regions=2,
        )
        with pytest.raises(QueryCancelled):
            CAQE(config).run(
                pair.left,
                pair.right,
                workload,
                contracts,
                cancel_token=StopAfter(stop_at),
            )
        resumed = resume_run(
            pair.left, pair.right, workload, contracts, config
        )
        assert (
            resumed.stats.skyline_comparisons
            == baseline.stats.skyline_comparisons
        )
        assert resumed.stats.elapsed == baseline.stats.elapsed
        assert resumed.stats.region_trace == baseline.stats.region_trace
        assert resumed.reported == baseline.reported
