"""Tests for BNL, SFS, and their agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.skyline.bnl import bnl_skyline
from repro.skyline.dominance import ComparisonCounter, dominates
from repro.skyline.sfs import sfs_order, sfs_skyline, sfs_skyline_stream


SIMPLE = np.array(
    [
        [1.0, 5.0],
        [2.0, 2.0],
        [5.0, 1.0],
        [3.0, 3.0],  # dominated by (2,2)
        [6.0, 6.0],  # dominated by everything
    ]
)


class TestBNL:
    def test_simple(self):
        assert bnl_skyline(SIMPLE) == [0, 1, 2]

    def test_empty(self):
        assert bnl_skyline(np.empty((0, 3))) == []

    def test_single(self):
        assert bnl_skyline(np.array([[4.0, 4.0]])) == [0]

    def test_subspace(self):
        assert bnl_skyline(SIMPLE, dims=[0]) == [0]

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            bnl_skyline(np.array([1.0, 2.0]))

    def test_all_duplicates_kept(self):
        pts = np.array([[1.0, 1.0]] * 4)
        assert bnl_skyline(pts) == [0, 1, 2, 3]


class TestSFS:
    def test_simple(self):
        assert sfs_skyline(SIMPLE) == [0, 1, 2]

    def test_order_is_by_ascending_sum(self):
        order = sfs_order(SIMPLE)
        sums = SIMPLE.sum(axis=1)[order]
        assert np.all(np.diff(sums) >= 0)

    def test_stream_yields_confirmed_results(self):
        yielded = list(sfs_skyline_stream(SIMPLE))
        assert sorted(yielded) == [0, 1, 2]

    def test_stream_first_result_is_min_sum(self):
        first = next(sfs_skyline_stream(SIMPLE))
        assert first == int(np.argmin(SIMPLE.sum(axis=1)))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            sfs_skyline(np.array([1.0]))


class TestAgreementAndEfficiency:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_bnl_sfs_agree(self, d, rng):
        pts = rng.random((300, d)) * 100
        assert bnl_skyline(pts) == sfs_skyline(pts)

    def test_sfs_needs_fewer_comparisons(self, rng):
        pts = rng.random((400, 3)) * 100
        c_bnl, c_sfs = ComparisonCounter(), ComparisonCounter()
        bnl_skyline(pts, counter=c_bnl)
        sfs_skyline(pts, counter=c_sfs)
        assert c_sfs.comparisons < c_bnl.comparisons

    def test_subspace_agreement(self, rng):
        pts = rng.random((200, 4)) * 100
        for dims in [(0,), (1, 3), (0, 1, 2)]:
            assert bnl_skyline(pts, dims=dims) == sfs_skyline(pts, dims=dims)


matrices = arrays(
    np.float64,
    st.tuples(st.integers(0, 50), st.just(3)),
    elements=st.floats(0, 100, allow_nan=False),
)


@given(pts=matrices)
@settings(max_examples=50, deadline=None)
def test_property_skyline_correct_and_algorithms_agree(pts):
    result = bnl_skyline(pts)
    assert result == sfs_skyline(pts)
    in_skyline = set(result)
    for i in range(len(pts)):
        dominated = any(dominates(pts[j], pts[i]) for j in range(len(pts)))
        assert (i in in_skyline) == (not dominated)
