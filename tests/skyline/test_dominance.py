"""Tests for tuple-level dominance (Definitions 1-2), incl. paper examples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.skyline.dominance import (
    ComparisonCounter,
    Dominance,
    compare,
    dominates,
    dominates_matrix,
)

# The paper's Example 3 hotels: (price, 5-rating-ish kept as rating, distance, wifi).
H1 = np.array([200.0, 5.0, 0.5, 20.0])
H2 = np.array([350.0, 5.0, 0.5, 20.0])
H3 = np.array([89.0, 2.0, 3.0, 0.0])


class TestExample3FullSpace:
    """Example 3 uses 'smaller is better' on price; rating 5 is mapped so
    that equal ratings tie — we compare raw vectors where h1 <= h2."""

    def test_h1_dominates_h2(self):
        assert dominates(H1, H2)

    def test_h2_not_dominates_h1(self):
        assert not dominates(H2, H1)

    def test_h1_h3_incomparable(self):
        assert not dominates(H1, H3)
        assert not dominates(H3, H1)


class TestExample4Subspace:
    def test_h3_dominates_both_in_price_wifi(self):
        dims = (0, 3)  # price, wifi
        assert dominates(H3, H1, dims=dims)
        assert dominates(H3, H2, dims=dims)

    def test_subspace_changes_outcome(self):
        assert not dominates(H3, H1)  # full space: incomparable
        assert dominates(H3, H1, dims=(0, 3))


class TestCompare:
    def test_left(self):
        assert compare(H1, H2) is Dominance.LEFT

    def test_right(self):
        assert compare(H2, H1) is Dominance.RIGHT

    def test_equal(self):
        assert compare(H1, H1) is Dominance.EQUAL

    def test_incomparable(self):
        assert compare(H1, H3) is Dominance.INCOMPARABLE

    def test_subspace_equal(self):
        assert compare(H1, H2, dims=(1, 2)) is Dominance.EQUAL


class TestStrictness:
    def test_equal_vectors_do_not_dominate(self):
        v = np.array([1.0, 2.0])
        assert not dominates(v, v)

    def test_weakly_smaller_dominates(self):
        assert dominates(np.array([1.0, 2.0]), np.array([1.0, 3.0]))


class TestCounter:
    def test_counts_each_call(self):
        counter = ComparisonCounter()
        dominates(H1, H2, counter=counter)
        compare(H1, H3, counter=counter)
        assert counter.comparisons == 2

    def test_matrix_counts_rows(self):
        counter = ComparisonCounter()
        dominates_matrix(np.vstack([H1, H2, H3]), H2, counter=counter)
        assert counter.comparisons == 3

    def test_on_increment_callback(self):
        seen = []
        counter = ComparisonCounter(on_increment=seen.append)
        counter.record(3)
        counter.record()
        assert counter.comparisons == 4
        assert seen == [3, 1]


class TestDominatesMatrix:
    def test_empty_matrix(self):
        assert not dominates_matrix(np.empty((0, 2)), np.array([1.0, 1.0]))

    def test_detects_dominator(self):
        pts = np.array([[5.0, 5.0], [1.0, 1.0]])
        assert dominates_matrix(pts, np.array([2.0, 2.0]))

    def test_subspace(self):
        pts = np.array([[5.0, 0.0]])
        assert dominates_matrix(pts, np.array([1.0, 3.0]), dims=[1])


points = arrays(np.float64, 3, elements=st.floats(0, 100, allow_nan=False))


@given(a=points, b=points, c=points)
@settings(max_examples=100, deadline=None)
def test_property_dominance_is_a_strict_partial_order(a, b, c):
    # Irreflexive.
    assert not dominates(a, a)
    # Asymmetric.
    if dominates(a, b):
        assert not dominates(b, a)
    # Transitive.
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


@given(a=points, b=points)
@settings(max_examples=100, deadline=None)
def test_property_compare_consistent_with_dominates(a, b):
    outcome = compare(a, b)
    assert (outcome is Dominance.LEFT) == dominates(a, b)
    assert (outcome is Dominance.RIGHT) == dominates(b, a)


@given(a=points, b=points, dims=st.sets(st.integers(0, 2), min_size=1))
@settings(max_examples=100, deadline=None)
def test_property_subspace_dominance_from_full_dominance(a, b, dims):
    """Full-space dominance implies weak subspace preference (never reversed)."""
    if dominates(a, b):
        assert not dominates(b, a, dims=sorted(dims))
