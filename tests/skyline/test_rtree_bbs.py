"""Tests for the R-tree substrate and the BBS index-based skyline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.skyline.bbs import bbs_skyline, bbs_skyline_stream
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dominance import ComparisonCounter
from repro.skyline.rtree import RTree


class TestRTree:
    def test_mbrs_contain_members(self, rng):
        pts = rng.random((200, 3)) * 100
        tree = RTree(pts, fanout=6)

        def check(node):
            if node.is_leaf:
                for row in node.entries:
                    assert np.all(pts[row] >= node.lower - 1e-9)
                    assert np.all(pts[row] <= node.upper + 1e-9)
                return set(node.entries)
            covered = set()
            for child in node.children:
                assert np.all(child.lower >= node.lower - 1e-9)
                assert np.all(child.upper <= node.upper + 1e-9)
                covered |= check(child)
            return covered

        assert check(tree.root) == set(range(200))

    def test_fanout_respected(self, rng):
        pts = rng.random((300, 2)) * 10
        tree = RTree(pts, fanout=4)

        def check(node):
            if node.is_leaf:
                assert 1 <= len(node.entries) <= 4
            else:
                assert len(node.children) <= 4
                for child in node.children:
                    check(child)

        check(tree.root)

    def test_height_grows_with_size(self, rng):
        small = RTree(rng.random((10, 2)), fanout=4)
        large = RTree(rng.random((500, 2)), fanout=4)
        assert large.height > small.height
        assert large.node_count() > small.node_count()

    def test_empty_tree(self):
        tree = RTree(np.empty((0, 2)))
        assert len(tree) == 0 and tree.root.is_leaf

    def test_single_point(self):
        tree = RTree(np.array([[1.0, 2.0]]))
        assert tree.root.entries == [0]

    def test_invalid_fanout(self):
        with pytest.raises(ReproError):
            RTree(np.ones((3, 2)), fanout=1)

    def test_rejects_1d(self):
        with pytest.raises(ReproError):
            RTree(np.array([1.0, 2.0]))


class TestBBS:
    @pytest.mark.parametrize("n", [0, 1, 10, 300])
    def test_matches_bnl(self, n, rng):
        pts = rng.random((n, 3)) * 100
        assert bbs_skyline(pts) == bnl_skyline(pts)

    def test_subspace(self, rng):
        pts = rng.random((200, 4)) * 100
        for dims in [(0,), (1, 2), (0, 2, 3)]:
            assert bbs_skyline(pts, dims=dims) == bnl_skyline(pts, dims=dims)

    def test_progressive_order_is_by_l1(self, rng):
        """BBS yields results in ascending L1 order — first result is the
        minimum-sum skyline point, immediately final."""
        pts = rng.random((300, 2)) * 100
        tree = RTree(pts)
        yielded = list(bbs_skyline_stream(tree))
        sums = pts[yielded].sum(axis=1)
        assert np.all(np.diff(sums) >= -1e-9)
        assert yielded[0] == int(np.argmin(pts.sum(axis=1)))

    def test_every_yield_is_final(self, rng):
        pts = rng.random((200, 3)) * 100
        truth = set(bnl_skyline(pts))
        tree = RTree(pts)
        for row in bbs_skyline_stream(tree):
            assert row in truth  # never retracted

    def test_fewer_dominance_work_than_bnl_on_correlated(self):
        from repro.datagen.distributions import correlated

        pts = correlated(1500, 3, seed=9)
        c_bnl, c_bbs = ComparisonCounter(), ComparisonCounter()
        assert bnl_skyline(pts, counter=c_bnl) == bbs_skyline(pts, counter=c_bbs)
        assert c_bbs.comparisons < c_bnl.comparisons

    def test_duplicates_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert bbs_skyline(pts) == [0, 1]


@given(
    n=st.integers(0, 80),
    d=st.integers(2, 4),
    fanout=st.integers(2, 9),
    seed=st.integers(0, 500),
)
@settings(max_examples=30, deadline=None)
def test_property_bbs_exact_for_any_tree_shape(n, d, fanout, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d)) * 100
    assert bbs_skyline(pts, fanout=fanout) == bnl_skyline(pts)
