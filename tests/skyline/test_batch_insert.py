"""Property tests: ``insert_batch`` ≡ a sequence of scalar inserts.

The batch form is an *execution strategy*, not a semantic change: for any
interleaving of :meth:`SkylineWindow.insert` and
:meth:`SkylineWindow.insert_known_member` calls, replaying the same points
through :meth:`SkylineWindow.insert_batch` must yield identical admissions,
evictions, duplicate flags, final window contents **and charged comparison
counts** (the Figure 10b metric).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline.dominance import ComparisonCounter
from repro.skyline.window import SkylineWindow


@st.composite
def batch_cases(draw):
    """Points on a coarse grid (to provoke ties/dominance), plus a
    known-member flag per point and arbitrary batch split points."""
    n = draw(st.integers(min_value=0, max_value=30))
    width = draw(st.integers(min_value=1, max_value=3))
    points = [
        np.array(
            draw(
                st.lists(
                    st.integers(0, 4).map(float),
                    min_size=width,
                    max_size=width,
                )
            )
        )
        for _ in range(n)
    ]
    known = [draw(st.booleans()) for _ in range(n)]
    cuts = sorted(
        draw(
            st.lists(
                st.integers(0, n), min_size=0, max_size=4, unique=True
            )
        )
    )
    return points, known, cuts


def _run_sequential(points, known):
    counter = ComparisonCounter()
    window = SkylineWindow(counter=counter)
    outcomes = []
    for i, (p, k) in enumerate(zip(points, known)):
        method = window.insert_known_member if k else window.insert
        outcomes.append(method(i, p))
    return window, counter, outcomes


def _run_batched(points, known, cuts):
    counter = ComparisonCounter()
    window = SkylineWindow(counter=counter)
    outcomes = []
    bounds = [0, *cuts, len(points)]
    for lo, hi in zip(bounds, bounds[1:]):
        if hi <= lo:
            continue
        batch = window.insert_batch(
            list(range(lo, hi)),
            np.vstack([points[i] for i in range(lo, hi)]),
            known_member=np.array(known[lo:hi], dtype=bool),
        )
        outcomes.extend(batch.outcome(j) for j in range(hi - lo))
    return window, counter, outcomes


@given(case=batch_cases())
@settings(max_examples=120, deadline=None)
def test_property_batch_equals_sequential(case):
    points, known, cuts = case
    seq_window, seq_counter, seq_outcomes = _run_sequential(points, known)
    bat_window, bat_counter, bat_outcomes = _run_batched(points, known, cuts)

    for i, (seq, bat) in enumerate(zip(seq_outcomes, bat_outcomes)):
        assert seq.admitted == bat.admitted, f"admission differs at {i}"
        assert seq.duplicate == bat.duplicate, f"duplicate flag differs at {i}"
        assert [e.key for e in seq.evicted] == [e.key for e in bat.evicted]
        for se, be in zip(seq.evicted, bat.evicted):
            np.testing.assert_array_equal(se.vector, be.vector)

    assert seq_window.keys == bat_window.keys
    np.testing.assert_array_equal(seq_window.vectors, bat_window.vectors)
    # Figure 10b bit-identity: same total charged comparisons.
    assert seq_counter.comparisons == bat_counter.comparisons


@given(case=batch_cases())
@settings(max_examples=60, deadline=None)
def test_property_batch_respects_subspace_projection(case):
    """A dims-restricted window batches over the projected columns only."""
    points, known, cuts = case
    wide = [np.concatenate([p, [float(i)]]) for i, p in enumerate(points)]
    dims = tuple(range(len(points[0]))) if points else (0,)

    seq_counter = ComparisonCounter()
    seq = SkylineWindow(dims=dims, counter=seq_counter)
    for i, (p, k) in enumerate(zip(wide, known)):
        (seq.insert_known_member if k else seq.insert)(i, p)

    bat_counter = ComparisonCounter()
    bat = SkylineWindow(dims=dims, counter=bat_counter)
    if wide:
        bat.insert_batch(
            list(range(len(wide))),
            np.vstack(wide),
            known_member=np.array(known, dtype=bool),
        )

    assert seq.keys == bat.keys
    np.testing.assert_array_equal(seq.vectors, bat.vectors)
    assert seq_counter.comparisons == bat_counter.comparisons


def test_batch_on_empty_input_is_a_noop():
    window = SkylineWindow()
    outcome = window.insert_batch([], np.empty((0, 2)))
    assert outcome.admitted.shape == (0,)
    assert len(window) == 0


def test_batch_continues_from_existing_window():
    """A batch against a pre-populated window sees its entries."""
    counter = ComparisonCounter()
    window = SkylineWindow(counter=counter)
    window.insert("seed", np.array([1.0, 1.0]))
    counter.comparisons = 0
    outcome = window.insert_batch(
        ["a", "b"], np.array([[2.0, 2.0], [0.0, 0.0]])
    )
    assert not outcome.admitted[0]  # dominated by the seed entry
    assert outcome.admitted[1]
    assert [e.key for e in outcome.evicted[1]] == ["seed"]
    assert window.keys == ["b"]
    # "a" rejected at first dominator (1) + "b" admitted vs 1 entry (1).
    assert counter.comparisons == 2
