"""Tests for the full skycube (Figure 5) and its shared computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.skyline import dva
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dominance import ComparisonCounter
from repro.skyline.skycube import all_subspaces, compute_naive, compute_shared


class TestAllSubspaces:
    @pytest.mark.parametrize("d,expected", [(1, 1), (2, 3), (3, 7), (4, 15)])
    def test_count_is_2_pow_d_minus_1(self, d, expected):
        assert len(all_subspaces(d)) == expected

    def test_ordered_smallest_first(self):
        subs = all_subspaces(3)
        sizes = [len(s) for s in subs]
        assert sizes == sorted(sizes)

    def test_invalid_d(self):
        with pytest.raises(ReproError):
            all_subspaces(0)


class TestSkycube:
    @pytest.fixture
    def points(self, rng):
        return rng.random((150, 4)) * 100

    def test_naive_matches_per_subspace_bnl(self, points):
        cube = compute_naive(points)
        for sub in all_subspaces(4):
            assert cube.skyline(sub) == frozenset(
                bnl_skyline(points, dims=sorted(sub))
            )

    def test_shared_equals_naive(self, points):
        naive = compute_naive(points)
        shared = compute_shared(points)
        assert len(naive) == len(shared) == 15
        for sub in naive.subspaces:
            assert naive.skyline(sub) == shared.skyline(sub)

    def test_shared_saves_comparisons(self, points):
        c_naive, c_shared = ComparisonCounter(), ComparisonCounter()
        compute_naive(points, c_naive)
        compute_shared(points, c_shared)
        assert c_shared.comparisons < c_naive.comparisons

    def test_theorem1_subset_relation_under_dva(self, points):
        """Under DVA, child-subspace skylines are subsets of parents'."""
        assert dva.holds(points)
        cube = compute_shared(points)
        for sub in all_subspaces(4):
            for extra in range(4):
                if extra in sub:
                    continue
                parent = sub | {extra}
                assert cube.skyline(sub) <= cube.skyline(parent)

    def test_non_dva_falls_back_to_naive(self):
        # Integer grid data with massive ties violates DVA.
        pts = np.array([[1.0, 2.0], [1.0, 3.0], [2.0, 1.0], [2.0, 2.0]])
        assert not dva.holds(pts)
        shared = compute_shared(pts)
        naive = compute_naive(pts)
        for sub in naive.subspaces:
            assert shared.skyline(sub) == naive.skyline(sub)

    def test_unknown_subspace_raises(self, points):
        cube = compute_naive(points[:, :2])
        with pytest.raises(ReproError):
            cube.skyline({5})

    def test_contains(self, points):
        cube = compute_naive(points[:, :2])
        assert {0} in cube
        assert {0, 1} in cube


class TestDVA:
    def test_holds_on_distinct(self):
        assert dva.holds(np.array([[1.0, 5.0], [2.0, 4.0]]))

    def test_fails_on_ties(self):
        assert not dva.holds(np.array([[1.0, 5.0], [1.0, 4.0]]))

    def test_violating_dimensions(self):
        pts = np.array([[1.0, 5.0, 2.0], [1.0, 4.0, 2.0]])
        assert dva.violating_dimensions(pts) == [0, 2]

    def test_dims_argument(self):
        pts = np.array([[1.0, 5.0], [1.0, 4.0]])
        assert dva.holds(pts, dims=[1])
        assert not dva.holds(pts, dims=[0])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            dva.holds(np.array([1.0, 2.0]))


@given(
    n=st.integers(1, 60),
    d=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_property_shared_always_equals_naive(n, d, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d)) * 100
    naive = compute_naive(pts)
    shared = compute_shared(pts)
    for sub in naive.subspaces:
        assert naive.skyline(sub) == shared.skyline(sub)
