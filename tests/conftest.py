"""Shared fixtures: the Figure-1 workload, small table pairs, helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import generate_pair
from repro.query import (
    JoinCondition,
    Preference,
    SkylineJoinQuery,
    Workload,
    add,
    subspace_workload,
)


@pytest.fixture(scope="session")
def figure1_functions():
    return tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, 5))


@pytest.fixture(scope="session")
def figure1_workload(figure1_functions):
    """The paper's running workload (Figure 1) on a single join condition.

    The original uses two join conditions; most plan-level tests only need
    the skyline-dimension structure, which is unchanged by the condition.
    """
    jc = JoinCondition.on("jc1", name="JC1")
    f = figure1_functions
    return Workload(
        [
            SkylineJoinQuery("Q1", jc, f[:2], Preference.over("d1", "d2")),
            SkylineJoinQuery("Q2", jc, f[:3], Preference.over("d1", "d2", "d3")),
            SkylineJoinQuery("Q3", jc, f[1:3], Preference.over("d2", "d3")),
            SkylineJoinQuery("Q4", jc, f[1:4], Preference.over("d2", "d3", "d4")),
        ]
    )


@pytest.fixture(scope="session")
def eleven_query_workload():
    """The experiments' |S_Q| = 11 workload (all 2..4-dim subspaces)."""
    return subspace_workload(4, priority_scheme="uniform")


@pytest.fixture(scope="session")
def small_pair():
    """A small independent benchmark pair usable across integration tests."""
    return generate_pair("independent", 200, 4, selectivity=0.05, seed=11)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
