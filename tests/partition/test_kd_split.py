"""Tests for the k-d split policy in the input partitioner."""

import numpy as np
import pytest

from repro.datagen import generate_table
from repro.errors import PartitionError
from repro.partition import quadtree_partition
from repro.query import JoinCondition


@pytest.fixture(scope="module")
def table():
    return generate_table("R", "correlated", 400, 4, seed=8)


@pytest.fixture(scope="module")
def conditions():
    return (JoinCondition.on("jc1", name="JC1"),)


class TestKdSplit:
    def test_exact_cover(self, table, conditions):
        part = quadtree_partition(
            table, ("m1", "m2", "m3", "m4"), conditions, "left",
            capacity=30, split="kd",
        )
        seen = sorted(i for leaf in part.leaves for i in leaf.indices)
        assert seen == list(range(table.cardinality))

    def test_respects_capacity(self, table, conditions):
        part = quadtree_partition(
            table, ("m1", "m2", "m3", "m4"), conditions, "left",
            capacity=30, split="kd",
        )
        assert all(leaf.size <= 30 for leaf in part.leaves)

    def test_balanced_leaves_on_skewed_data(self, table, conditions):
        """Median splits keep leaf sizes within a narrow band even on
        correlated (diagonally clustered) data, unlike midpoint quads."""
        kd = quadtree_partition(
            table, ("m1", "m2", "m3", "m4"), conditions, "left",
            capacity=50, split="kd",
        )
        sizes = [leaf.size for leaf in kd.leaves]
        assert max(sizes) <= 2.5 * max(min(sizes), 1)

    def test_kd_allows_many_dimensions(self, conditions):
        """The quad split caps dimensionality (2^d children); kd does not."""
        table = generate_table("W", "independent", 200, 8, seed=3)
        attrs = tuple(f"m{i}" for i in range(1, 9))
        with pytest.raises(PartitionError):
            quadtree_partition(table, attrs, conditions, "left", split="quad")
        part = quadtree_partition(
            table, attrs, conditions, "left", capacity=25, split="kd"
        )
        assert part.total_tuples() == 200

    def test_unknown_split_rejected(self, table, conditions):
        with pytest.raises(PartitionError, match="split"):
            quadtree_partition(
                table, ("m1",), conditions, "left", split="rtree"
            )

    def test_constant_data_single_leaf(self, conditions):
        from repro.relation import Relation, Role, Schema

        rel = Relation(
            "C",
            Schema.of(m1=Role.MEASURE, jc1=Role.JOIN),
            {"m1": np.full(50, 7.0), "jc1": np.zeros(50, dtype=int)},
        )
        part = quadtree_partition(
            rel, ("m1",), conditions, "left", capacity=10, split="kd"
        )
        assert part.cell_count == 1  # nothing to split on


class TestKdEndToEnd:
    def test_caqe_exact_with_kd_partitioning(self):
        from repro.contracts import c2
        from repro.core import CAQE, CAQEConfig
        from repro.datagen import generate_pair
        from repro.query import reference_evaluate, subspace_workload

        pair = generate_pair("independent", 120, 4, selectivity=0.05, seed=55)
        workload = subspace_workload(4)
        contracts = {q.name: c2(scale=100.0) for q in workload}
        result = CAQE(CAQEConfig(partition_split="kd")).run(
            pair.left, pair.right, workload, contracts
        )
        for query in workload:
            ref = reference_evaluate(query, pair.left, pair.right)
            assert result.reported[query.name] == ref.skyline_pairs

    def test_invalid_config_value(self):
        from repro.core import CAQEConfig
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            CAQEConfig(partition_split="grid")
