"""Tests for hyper-rectangles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.bounds import HyperRect


class TestConstruction:
    def test_valid(self):
        rect = HyperRect((0.0, 0.0), (1.0, 2.0))
        assert rect.dimensions == 2

    def test_arity_mismatch(self):
        with pytest.raises(PartitionError):
            HyperRect((0.0,), (1.0, 2.0))

    def test_inverted_bounds(self):
        with pytest.raises(PartitionError):
            HyperRect((2.0,), (1.0,))

    def test_empty(self):
        with pytest.raises(PartitionError):
            HyperRect((), ())

    def test_from_points(self):
        pts = np.array([[1.0, 5.0], [3.0, 2.0]])
        rect = HyperRect.from_points(pts)
        assert rect.lower == (1.0, 2.0) and rect.upper == (3.0, 5.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(PartitionError):
            HyperRect.from_points(np.empty((0, 2)))


class TestGeometry:
    def test_contains(self):
        rect = HyperRect((0.0, 0.0), (2.0, 2.0))
        assert rect.contains([1.0, 1.0])
        assert rect.contains([0.0, 2.0])  # closed box
        assert not rect.contains([3.0, 1.0])

    def test_intersects(self):
        a = HyperRect((0.0, 0.0), (2.0, 2.0))
        b = HyperRect((1.0, 1.0), (3.0, 3.0))
        c = HyperRect((5.0, 5.0), (6.0, 6.0))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)

    def test_touching_boxes_intersect(self):
        a = HyperRect((0.0,), (1.0,))
        b = HyperRect((1.0,), (2.0,))
        assert a.intersects(b)

    def test_volume(self):
        assert HyperRect((0.0, 0.0), (2.0, 3.0)).volume() == 6.0
        assert HyperRect((1.0,), (1.0,)).volume() == 0.0

    def test_center(self):
        assert HyperRect((0.0, 2.0), (2.0, 4.0)).center == (1.0, 3.0)


class TestSplit:
    def test_split_count(self):
        rect = HyperRect((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))
        assert len(rect.split_midpoint()) == 8

    def test_split_covers_volume(self):
        rect = HyperRect((0.0, 0.0), (4.0, 2.0))
        quads = rect.split_midpoint()
        assert sum(q.volume() for q in quads) == pytest.approx(rect.volume())

    def test_split_quadrant_bounds(self):
        rect = HyperRect((0.0, 0.0), (2.0, 2.0))
        quads = rect.split_midpoint()
        # code 0 = lower half in both dims
        assert quads[0].lower == (0.0, 0.0) and quads[0].upper == (1.0, 1.0)
        # code 3 = upper half in both dims
        assert quads[3].lower == (1.0, 1.0) and quads[3].upper == (2.0, 2.0)


@given(
    lows=st.lists(st.floats(0, 50, allow_nan=False), min_size=1, max_size=4),
    deltas=st.lists(st.floats(0, 50, allow_nan=False), min_size=1, max_size=4),
    t=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_property_split_children_contain_their_points(lows, deltas, t):
    d = min(len(lows), len(deltas), len(t))
    lows, deltas, t = lows[:d], deltas[:d], t[:d]
    rect = HyperRect(tuple(lows), tuple(l + w for l, w in zip(lows, deltas)))
    point = [l + ti * w for l, w, ti in zip(lows, deltas, t)]
    assert rect.contains(point)
    assert any(q.contains(point) for q in rect.split_midpoint())
