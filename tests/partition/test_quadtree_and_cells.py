"""Tests for quad-tree partitioning, leaf cells, and signatures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import generate_table
from repro.errors import PartitionError
from repro.partition import (
    grid_partition,
    make_leaf,
    quadtree_partition,
    signatures_intersect,
)
from repro.partition.signatures import common_values, signature_of
from repro.query import JoinCondition


@pytest.fixture(scope="module")
def table():
    return generate_table(
        "R", "independent", 300, 3, joins=2, selectivity=0.05, seed=17
    )


@pytest.fixture(scope="module")
def conditions():
    return (JoinCondition.on("jc1", name="JC1"), JoinCondition.on("jc2", name="JC2"))


@pytest.fixture(scope="module")
def partitioning(table, conditions):
    return quadtree_partition(
        table, ("m1", "m2", "m3"), conditions, "left", capacity=40
    )


class TestQuadtreePartition:
    def test_covers_all_tuples_exactly_once(self, partitioning, table):
        seen = np.concatenate([leaf.indices for leaf in partitioning.leaves])
        assert sorted(seen.tolist()) == list(range(table.cardinality))

    def test_respects_capacity(self, partitioning):
        assert all(leaf.size <= 40 for leaf in partitioning.leaves)

    def test_bounds_contain_members(self, partitioning, table):
        for leaf in partitioning.leaves:
            for attr in leaf.measure_attrs:
                values = table.column(attr)[leaf.indices]
                assert values.min() >= leaf.lower_of(attr)
                assert values.max() <= leaf.upper_of(attr)

    def test_cell_ids_unique(self, partitioning):
        ids = [leaf.cell_id for leaf in partitioning.leaves]
        assert len(set(ids)) == len(ids)

    def test_signatures_present_per_condition(self, partitioning):
        for leaf in partitioning.leaves:
            assert set(leaf.signatures) == {"JC1", "JC2"}

    def test_signature_values_match_members(self, partitioning, table):
        leaf = partitioning.leaves[0]
        expected = {int(v) for v in table.column("jc1")[leaf.indices]}
        assert leaf.signature("JC1") == expected

    def test_small_table_single_leaf(self, table, conditions):
        part = quadtree_partition(
            table, ("m1",), conditions, "left", capacity=10**6
        )
        assert part.cell_count == 1

    def test_empty_table(self, conditions):
        from repro.relation import Relation, Role, Schema

        empty = Relation(
            "E",
            Schema.of(m1=Role.MEASURE, jc1=Role.JOIN, jc2=Role.JOIN),
            {"m1": np.empty(0), "jc1": np.empty(0, int), "jc2": np.empty(0, int)},
        )
        part = quadtree_partition(empty, ("m1",), conditions, "left")
        assert part.cell_count == 0

    def test_too_many_dimensions_rejected(self, table, conditions):
        with pytest.raises(PartitionError, match="2\\^d"):
            quadtree_partition(
                table, tuple(f"m{i}" for i in range(1, 8)), conditions, "left"
            )

    def test_invalid_capacity(self, table, conditions):
        with pytest.raises(PartitionError):
            quadtree_partition(table, ("m1",), conditions, "left", capacity=0)

    def test_cell_lookup(self, partitioning):
        leaf = partitioning.leaves[0]
        assert partitioning.cell(leaf.cell_id) is leaf
        with pytest.raises(PartitionError):
            partitioning.cell(10**9)

    def test_total_tuples(self, partitioning, table):
        assert partitioning.total_tuples() == table.cardinality


class TestGridPartition:
    def test_covers_all_tuples(self, table, conditions):
        part = grid_partition(table, ("m1", "m2"), conditions, "left", divisions=3)
        assert part.total_tuples() == table.cardinality

    def test_divisions_bound_cell_count(self, table, conditions):
        part = grid_partition(table, ("m1", "m2"), conditions, "left", divisions=3)
        assert part.cell_count <= 9

    def test_invalid_divisions(self, table, conditions):
        with pytest.raises(PartitionError):
            grid_partition(table, ("m1",), conditions, "left", divisions=0)


class TestLeafCell:
    def test_make_leaf_deduplicates_indices(self, table, conditions):
        leaf = make_leaf(0, table, np.array([3, 3, 5]), ("m1",), conditions, "left")
        assert leaf.size == 2

    def test_rejects_empty(self, table, conditions):
        with pytest.raises(PartitionError):
            make_leaf(0, table, np.array([], dtype=int), ("m1",), conditions, "left")

    def test_bound_maps(self, table, conditions):
        leaf = make_leaf(0, table, np.arange(10), ("m1", "m2"), conditions, "left")
        assert set(leaf.lower_map()) == {"m1", "m2"}
        assert leaf.lower_map()["m1"] == leaf.lower_of("m1")

    def test_unknown_signature_raises(self, table, conditions):
        leaf = make_leaf(0, table, np.arange(5), ("m1",), conditions, "left")
        with pytest.raises(PartitionError):
            leaf.signature("JC9")

    def test_right_side_signatures(self, table):
        condition = JoinCondition("X", "nonexistent", "jc1")
        leaf = make_leaf(0, table, np.arange(5), ("m1",), (condition,), "right")
        assert leaf.signature("X") == {
            int(v) for v in table.column("jc1")[:5]
        }


class TestSignatures:
    def test_intersect(self):
        assert signatures_intersect(frozenset({1, 2}), frozenset({2, 3}))
        assert not signatures_intersect(frozenset({1}), frozenset({2}))

    def test_intersect_empty(self):
        assert not signatures_intersect(frozenset(), frozenset({1}))

    def test_common_values(self):
        assert common_values(frozenset({1, 2, 3}), frozenset({2, 3, 4})) == {2, 3}

    def test_signature_of(self, table):
        sig = signature_of(table, np.array([0, 1, 2]), "jc1")
        assert sig == {int(v) for v in table.column("jc1")[:3]}

    def test_bad_side_rejected(self, table, conditions):
        from repro.partition.signatures import signatures_for_side

        with pytest.raises(ValueError):
            signatures_for_side(table, np.arange(3), conditions, "middle")


@given(capacity=st.integers(5, 200), seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_property_partitioning_is_exact_cover(capacity, seed):
    table = generate_table("R", "anticorrelated", 120, 2, seed=seed)
    part = quadtree_partition(
        table, ("m1", "m2"), (JoinCondition.on("jc1", name="JC1"),), "left",
        capacity=capacity,
    )
    seen = sorted(
        int(i) for leaf in part.leaves for i in leaf.indices
    )
    assert seen == list(range(table.cardinality))
