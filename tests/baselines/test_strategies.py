"""Tests for the competitor execution strategies (Section 7.1)."""

import numpy as np
import pytest

from repro.baselines import (
    FIGURE_STRATEGIES,
    JFSL,
    SSMJ,
    ProgXePlus,
    RoundRobin,
    SJFSL,
    all_strategy_names,
    make_strategy,
)
from repro.contracts import c1, c2
from repro.core import CAQEConfig
from repro.datagen import generate_pair
from repro.errors import BenchmarkError, ExecutionError
from repro.query import reference_evaluate, subspace_workload


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 120, 4, selectivity=0.05, seed=31)


@pytest.fixture(scope="module")
def workload():
    return subspace_workload(4, priority_scheme="dims_desc")


@pytest.fixture(scope="module")
def contracts(workload):
    return {q.name: c2(scale=100.0) for q in workload}


@pytest.fixture(scope="module")
def references(pair, workload):
    return {
        q.name: reference_evaluate(q, pair.left, pair.right).skyline_pairs
        for q in workload
    }


@pytest.mark.parametrize("name", all_strategy_names())
class TestAllStrategiesExact:
    def test_results_match_reference(
        self, name, pair, workload, contracts, references
    ):
        """Every technique must compute the exact same final answers —
        they differ only in when results are delivered and at what cost."""
        result = make_strategy(name).run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert result.reported[query.name] == references[query.name], name

    def test_logs_complete(self, name, pair, workload, contracts, references):
        result = make_strategy(name).run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert len(result.logs[query.name]) == len(references[query.name])

    def test_missing_contract_raises(self, name, pair, workload, contracts):
        incomplete = {k: v for k, v in contracts.items() if k != "Q3"}
        with pytest.raises(ExecutionError):
            make_strategy(name).run(pair.left, pair.right, workload, incomplete)


class TestBlockingVsProgressive:
    def test_jfsl_reports_each_query_at_one_instant(
        self, pair, workload, contracts
    ):
        result = JFSL().run(pair.left, pair.right, workload, contracts)
        for query in workload:
            ts = result.logs[query.name].timestamps
            assert len(np.unique(ts)) == 1  # blocking per query

    def test_ssmj_reports_each_query_at_one_instant(
        self, pair, workload, contracts
    ):
        result = SSMJ().run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert len(np.unique(result.logs[query.name].timestamps)) == 1

    def test_jfsl_queries_finish_in_priority_order(self, pair, workload, contracts):
        result = JFSL().run(pair.left, pair.right, workload, contracts)
        finish = {
            q.name: result.logs[q.name].completion_time for q in workload
        }
        ordered = [q.name for q in workload.by_priority()]
        times = [finish[n] for n in ordered]
        assert times == sorted(times)

    def test_progressive_strategies_spread_results(self, pair, workload, contracts):
        for strategy in (SJFSL(), ProgXePlus()):
            result = strategy.run(pair.left, pair.right, workload, contracts)
            all_ts = np.concatenate(
                [result.logs[q.name].timestamps for q in workload]
            )
            assert len(np.unique(all_ts)) > len(workload)

    def test_roundrobin_finishes_all_queries_late(self, pair, workload, contracts):
        """Time-sharing pushes every completion toward the horizon."""
        result = RoundRobin().run(pair.left, pair.right, workload, contracts)
        for query in workload:
            assert (
                result.logs[query.name].completion_time >= 0.5 * result.horizon
            )


class TestSharingEffects:
    def test_jfsl_materialises_join_per_query(self, pair, workload, contracts):
        jfsl = JFSL().run(pair.left, pair.right, workload, contracts)
        sjfsl = SJFSL().run(pair.left, pair.right, workload, contracts)
        # JFSL repeats the join |S_Q| times; the shared plan pays it once.
        assert jfsl.stats.join_results > 5 * sjfsl.stats.join_results

    def test_ssmj_local_pruning_reduces_join(self, pair, workload, contracts):
        ssmj = SSMJ().run(pair.left, pair.right, workload, contracts)
        jfsl = JFSL().run(pair.left, pair.right, workload, contracts)
        assert ssmj.stats.join_results < jfsl.stats.join_results

    def test_progxe_runs_queries_independently(self, pair, workload, contracts):
        progxe = ProgXePlus().run(pair.left, pair.right, workload, contracts)
        sjfsl = SJFSL().run(pair.left, pair.right, workload, contracts)
        assert progxe.stats.join_results > sjfsl.stats.join_results


class TestRegistry:
    def test_figure_strategies(self):
        assert FIGURE_STRATEGIES == ("CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ")

    def test_unknown_strategy(self):
        with pytest.raises(BenchmarkError):
            make_strategy("Oracle")

    def test_config_threads_through(self, pair, workload, contracts):
        cfg = CAQEConfig(target_cells=4)
        result = make_strategy("CAQE", cfg).run(
            pair.left, pair.right, workload, contracts
        )
        assert result.stats.regions_processed <= 16 * 16

    def test_table3_matrix(self):
        from repro.baselines import feature_matrix

        matrix = feature_matrix()
        assert matrix["CAQE"].supports_qos
        assert not matrix["S-JFSL"].supports_qos
        assert matrix["S-JFSL"].multiple_queries and matrix["S-JFSL"].progressive
        assert not matrix["JFSL"].progressive
        assert matrix["ProgXe+"].progressive and not matrix["ProgXe+"].multiple_queries
        assert not matrix["SSMJ"].progressive
        only_qos = [name for name, caps in matrix.items() if caps.supports_qos]
        assert only_qos == ["CAQE"]
