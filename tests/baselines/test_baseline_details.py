"""Detailed behavioural tests for individual baselines."""

import numpy as np
import pytest

from repro.baselines import JFSL, SSMJ, ProgXePlus, RoundRobin, SJFSL
from repro.baselines.roundrobin import DEFAULT_QUANTUM
from repro.contracts import c1, c2
from repro.core import CAQEConfig
from repro.datagen import generate_pair
from repro.query import reference_evaluate, subspace_workload


@pytest.fixture(scope="module")
def pair():
    return generate_pair("independent", 100, 4, selectivity=0.08, seed=83)


@pytest.fixture(scope="module")
def workload():
    return subspace_workload(4, priority_scheme="uniform")


@pytest.fixture(scope="module")
def contracts(workload):
    return {q.name: c2(scale=100.0) for q in workload}


class TestRoundRobinDetails:
    def test_quantum_changes_interleaving_not_results(
        self, pair, workload, contracts
    ):
        fine = RoundRobin(quantum=8).run(pair.left, pair.right, workload, contracts)
        coarse = RoundRobin(quantum=512).run(
            pair.left, pair.right, workload, contracts
        )
        for q in workload:
            assert fine.reported[q.name] == coarse.reported[q.name]
        # Identical total work: same virtual completion time.
        assert fine.horizon == pytest.approx(coarse.horizon)

    def test_default_quantum(self):
        assert RoundRobin().quantum == DEFAULT_QUANTUM

    def test_completions_cluster_at_the_end(self, pair, workload, contracts):
        """Time sharing: the spread of completion times is much narrower
        than under sequential (JFSL) processing."""
        rr = RoundRobin().run(pair.left, pair.right, workload, contracts)
        jf = JFSL().run(pair.left, pair.right, workload, contracts)
        rr_times = np.array([rr.logs[q.name].completion_time for q in workload])
        jf_times = np.array([jf.logs[q.name].completion_time for q in workload])
        assert rr_times.std() < jf_times.std()


class TestSSMJDetails:
    def test_local_pruning_never_loses_results(self, pair, workload, contracts):
        result = SSMJ().run(pair.left, pair.right, workload, contracts)
        for q in workload:
            ref = reference_evaluate(q, pair.left, pair.right)
            assert result.reported[q.name] == ref.skyline_pairs

    def test_sort_cost_charged(self, pair, workload, contracts):
        """SSMJ must pay for its presort (the 'sort' in sort-merge)."""
        ssmj = SSMJ().run(pair.left, pair.right, workload, contracts)
        # Reconstruct the non-sort virtual time from its counters; the
        # actual horizon must exceed it.
        s = ssmj.stats.summary()
        cm = ssmj.stats.clock.cost_model
        without_sort = (
            s["join_probes"] * cm.join_probe
            + s["join_results"] * (cm.join_result + 4 * cm.mapping)
            + s["skyline_comparisons"] * cm.skyline_comparison
            + s["results_reported"] * cm.output
        )
        assert ssmj.horizon > without_sort


class TestProgXeDetails:
    def test_forces_count_objective(self):
        engine = ProgXePlus(CAQEConfig(objective="contract", enable_feedback=True))
        assert engine.config.objective == "count"
        assert not engine.config.enable_feedback

    def test_sequential_by_priority(self, pair, workload, contracts):
        result = ProgXePlus().run(pair.left, pair.right, workload, contracts)
        # The highest-priority query's first result precedes the
        # lowest-priority query's first result.
        ordered = workload.by_priority()
        first_hi = result.logs[ordered[0].name].timestamps.min()
        first_lo = result.logs[ordered[-1].name].timestamps.min()
        assert first_hi < first_lo


class TestSJFSLDetails:
    def test_forces_scan_objective_and_no_lookahead(self):
        engine = SJFSL(CAQEConfig())
        cfg = engine.config
        assert cfg.objective == "scan"
        assert not cfg.enable_depgraph
        assert not cfg.enable_coarse_pruning
        assert not cfg.enable_tuple_discard
        assert not cfg.enable_feedback

    def test_never_discards_regions(self, pair, workload, contracts):
        result = SJFSL().run(pair.left, pair.right, workload, contracts)
        assert result.stats.regions_discarded == 0


class TestDeadlineBehaviour:
    def test_blocking_strategies_score_zero_under_impossible_deadline(
        self, pair, workload
    ):
        tight = {q.name: c1(1e-6) for q in workload}
        for strategy in (JFSL(), SSMJ()):
            result = strategy.run(pair.left, pair.right, workload, tight)
            assert result.average_satisfaction() == 0.0

    def test_everyone_scores_one_under_infinite_deadline(self, pair, workload):
        lax = {q.name: c1(float("inf")) for q in workload}
        for strategy in (JFSL(), SSMJ(), SJFSL()):
            result = strategy.run(pair.left, pair.right, workload, lax)
            assert result.average_satisfaction() == 1.0
