"""Repo-native developer tooling (not shipped with the ``repro`` package).

``tools.caqe_check``        — the CAQE invariant linter (CQ001–CQ005).
``tools.determinism_audit`` — cross-``PYTHONHASHSEED`` regression gate.
"""
