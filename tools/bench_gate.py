"""Perf-regression gate over the quick benchmark matrix (ROADMAP item 5).

Runs the two quick benchmarks (``bench_perf_trajectory`` and
``bench_parallel_scaling``), distils one compact record, and gates it
against ``BENCH_history.jsonl``:

* **determinism** — ``skyline_comparisons`` / ``virtual_time`` /
  ``regions_processed`` / ``average_satisfaction`` must match the most
  recent passing history entry *exactly*.  These observables are
  deterministic functions of the code (not the machine), so any drift is
  a semantics change that slipped past the equivalence suites.
* **performance** — wall-clock is machine- and load-dependent, so the
  gate never compares absolute seconds across runs.  It compares
  *within-run* speedup ratios (``scalar+naive / batch+cache``,
  ``workers=N / workers=0``, and the scale sweep's throughput relative
  to its own 1x cell) against the median of recent passing entries, with
  a noise tolerance: a real regression slows the optimised engine
  relative to its own naive mode on the same machine in the same run,
  and a storage-layer blow-up shows up as falling relative throughput at
  4x/16x cardinality.

``REPRO_SCALE`` overrides rescale every cardinality, so each scale forms
its own baseline lineage in the history file — the CI scaled smoke job
(``REPRO_SCALE=4``) gates against scale-4 entries only.

Every run — pass or fail — is appended to the history file (audit
trail); only ``status: "pass"`` entries form future baselines.  An empty
or missing history seeds itself and passes.

Usage::

    PYTHONPATH=src python -m tools.bench_gate              # run + gate + append
    PYTHONPATH=src python -m tools.bench_gate --no-append  # dry gate
    PYTHONPATH=src python -m tools.bench_gate --skip-run \
        --perf BENCH_quick.json --parallel BENCH_parallel_quick.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Observables that must be bit-stable across machines for a quick run.
INVARIANT_KEYS = (
    "skyline_comparisons",
    "virtual_time",
    "regions_processed",
    "average_satisfaction",
)

#: History entries consulted for the performance baseline.
BASELINE_WINDOW = 5


def _run_quick_bench(
    script: str, out: Path, extra_args: "tuple[str, ...]" = ()
) -> dict:
    """Run one benchmark script with ``--quick`` and load its report."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / script), "--quick",
         "--out", str(out), *extra_args],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{script} --quick failed (exit {proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(out.read_text())


def _git_rev() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _invariants(modes_row: dict) -> dict:
    return {k: modes_row[k] for k in INVARIANT_KEYS}


def distil_serving(serving: dict) -> dict:
    """Compact per-arm record from a ``bench_serving`` report.

    Everything kept here is a deterministic function of the code (the
    load generator runs on the virtual clock), so the gate can require
    exact matches across machines.
    """
    return {
        f"{arm['policy']}@{arm['seed']}": {
            "fingerprint": arm["fingerprint"],
            "p50": arm["satisfaction_p50"],
            "p99": arm["satisfaction_p99"],
            "shed_rate": arm["shed_rate"],
            "brownout_rate": arm["brownout_rate"],
            "unanswered": arm["unanswered"],
            "deterministic": arm.get("deterministic", True),
        }
        for arm in serving.get("arms", [])
    }


def gate_serving(record: dict, history: "list[dict]") -> "list[str]":
    """Serving failures: within-run hard gates + cross-run determinism."""
    failures: "list[str]" = []
    arms = record.get("serving")
    if not arms:
        return failures
    for label, arm in sorted(arms.items()):
        if not arm["deterministic"]:
            failures.append(f"SERVING {label}: replay fingerprint diverged")
        if arm["unanswered"]:
            failures.append(
                f"SERVING {label}: {arm['unanswered']} admitted "
                "submission(s) never answered"
            )
    by_seed: "dict[str, dict]" = {}
    for label, arm in arms.items():
        policy, _, seed = label.partition("@")
        by_seed.setdefault(seed, {})[policy] = arm
    for seed, row in sorted(by_seed.items()):
        if "fifo" in row and "interleaved" in row:
            if row["interleaved"]["p99"] < row["fifo"]["p99"]:
                failures.append(
                    f"SERVING seed={seed}: interleaved p99 "
                    f"{row['interleaved']['p99']} fell below fifo p99 "
                    f"{row['fifo']['p99']}"
                )
    passing = [
        e
        for e in history
        if e.get("status") == "pass"
        and e.get("quick") == record.get("quick")
        and e.get("serving")
    ]
    if passing:
        latest = passing[-1]["serving"]
        for label in sorted(set(arms) & set(latest)):
            if arms[label]["fingerprint"] != latest[label]["fingerprint"]:
                failures.append(
                    f"SERVING DETERMINISM {label}: fingerprint "
                    f"{arms[label]['fingerprint']} != history "
                    f"{latest[label]['fingerprint']}"
                )
    return failures


def distil(perf: dict, parallel: "dict | None") -> dict:
    """One flat, diff-friendly record from the two benchmark reports."""
    fig9 = perf["fig9_independent_c2"]
    record: dict = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git": _git_rev(),
        "quick": perf.get("quick", True),
        "repro_scale": perf.get("repro_scale", 1.0),
        "python": perf.get("python"),
        "machine": perf.get("machine"),
        "fig9": {
            "invariants": _invariants(fig9["modes"]["batch+cache"]),
            "speedup": fig9["speedup"],
            "wall_s": fig9["modes"]["batch+cache"]["wall_s"],
        },
        "fig11": [
            {
                "queries": cell["scenario"]["queries"],
                "invariants": _invariants(cell["modes"]["batch+cache"]),
                "speedup": cell["speedup"],
            }
            for cell in perf["fig11_size_sweep"]
        ],
        "scale_sweep": [
            {
                "scale": cell["scale"],
                "cardinality": cell["cardinality"],
                "invariants": _invariants(cell),
                "wall_s": cell["wall_s"],
                "relative_throughput": cell["relative_throughput"],
            }
            for cell in perf.get("scale_sweep", [])
        ],
    }
    if parallel is not None:
        scaling = {}
        for section, cell in parallel.items():
            if not isinstance(cell, dict) or "settings" not in cell:
                continue
            serial = cell["settings"]["workers=0"]
            scaling[section] = {
                "invariants": _invariants(serial),
                "speedups": {
                    setting: row["speedup_vs_serial"]
                    for setting, row in cell["settings"].items()
                    if setting != "workers=0"
                },
            }
        record["parallel"] = scaling
    return record


def load_history(path: Path) -> "list[dict]":
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def _comparable(record: dict, entry: dict) -> bool:
    """Entries gate each other only when they measured the same scenarios."""
    if entry.get("quick") != record.get("quick"):
        return False
    if entry.get("repro_scale", 1.0) != record.get("repro_scale", 1.0):
        # A REPRO_SCALE override changes every cardinality, so observables
        # legitimately differ; each scale forms its own baseline lineage.
        return False
    if [c["queries"] for c in entry.get("fig11", [])] != [
        c["queries"] for c in record["fig11"]
    ]:
        return False
    theirs_scales = [c["scale"] for c in entry.get("scale_sweep", [])]
    mine_scales = [c["scale"] for c in record.get("scale_sweep", [])]
    if theirs_scales and theirs_scales != mine_scales:
        # Entries predating the scale sweep stay comparable (the new
        # section seeds itself); mismatched sweeps do not.
        return False
    return True


def _median(values: "list[float]") -> float:
    ranked = sorted(values)
    mid = len(ranked) // 2
    if len(ranked) % 2:
        return ranked[mid]
    return (ranked[mid - 1] + ranked[mid]) / 2.0


def gate(record: dict, history: "list[dict]", tolerance: float) -> "list[str]":
    """Return a list of failure messages (empty = gate passes)."""
    failures: "list[str]" = []
    passing = [
        e
        for e in history
        if e.get("status") == "pass" and _comparable(record, e)
    ]
    if not passing:
        return failures  # seeding run: nothing to compare against

    # 1. Determinism: exact match against the latest passing entry.
    latest = passing[-1]
    checks = [("fig9", record["fig9"]["invariants"], latest["fig9"]["invariants"])]
    for mine, theirs in zip(record["fig11"], latest.get("fig11", [])):
        checks.append((f"fig11 |S_Q|={mine['queries']}", mine["invariants"],
                       theirs["invariants"]))
    for mine, theirs in zip(
        record.get("scale_sweep", []), latest.get("scale_sweep", [])
    ):
        checks.append((f"scale {mine['scale']}x", mine["invariants"],
                       theirs["invariants"]))
    for mine_p, theirs_p in [(record.get("parallel", {}),
                              latest.get("parallel", {}))]:
        for section in sorted(set(mine_p) & set(theirs_p)):
            checks.append((f"parallel {section}", mine_p[section]["invariants"],
                           theirs_p[section]["invariants"]))
    for label, mine_i, theirs_i in checks:
        for key in INVARIANT_KEYS:
            if mine_i.get(key) != theirs_i.get(key):
                failures.append(
                    f"DETERMINISM {label}: {key} = {mine_i.get(key)!r}, "
                    f"history has {theirs_i.get(key)!r}"
                )

    # 2. Performance: within-run ratios vs the recent median.
    window = passing[-BASELINE_WINDOW:]

    def ratio_gate(label: str, current: float, baseline_values: "list[float]"):
        if not baseline_values:
            return
        baseline = _median(baseline_values)
        floor = baseline * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"PERF {label}: ratio {current:.2f}x fell below "
                f"{floor:.2f}x (median {baseline:.2f}x of last "
                f"{len(baseline_values)} runs - {tolerance:.0%} tolerance)"
            )

    ratio_gate(
        "fig9 batch+cache vs scalar+naive",
        record["fig9"]["speedup"],
        [e["fig9"]["speedup"] for e in window],
    )
    for pos, cell in enumerate(record["fig11"]):
        ratio_gate(
            f"fig11 |S_Q|={cell['queries']}",
            cell["speedup"],
            [
                e["fig11"][pos]["speedup"]
                for e in window
                if len(e.get("fig11", [])) > pos
            ],
        )
    for pos, cell in enumerate(record.get("scale_sweep", [])):
        if cell["scale"] == 1:
            continue  # the 1x cell is the within-run denominator
        ratio_gate(
            f"scale {cell['scale']}x relative throughput",
            cell["relative_throughput"],
            [
                e["scale_sweep"][pos]["relative_throughput"]
                for e in window
                if len(e.get("scale_sweep", [])) > pos
            ],
        )
    for section, scaling in record.get("parallel", {}).items():
        for setting, speedup in scaling["speedups"].items():
            ratio_gate(
                f"parallel {section} {setting}",
                speedup,
                [
                    e["parallel"][section]["speedups"][setting]
                    for e in window
                    if setting
                    in e.get("parallel", {}).get(section, {}).get("speedups", {})
                ],
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history",
        type=Path,
        default=REPO_ROOT / "BENCH_history.jsonl",
        help="history file (default: repo-root BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed relative speedup drop vs the recent median "
        "(default 0.35 — quick runs on shared CI boxes are noisy)",
    )
    parser.add_argument(
        "--skip-run",
        action="store_true",
        help="gate existing reports instead of running the benchmarks",
    )
    parser.add_argument("--perf", type=Path, help="perf-trajectory report JSON")
    parser.add_argument("--parallel", type=Path, help="parallel-scaling report JSON")
    parser.add_argument("--serving", type=Path, help="serving-load report JSON")
    parser.add_argument(
        "--no-serving",
        action="store_true",
        help="skip the multi-tenant serving benchmark and its gate",
    )
    parser.add_argument(
        "--no-parallel",
        action="store_true",
        help="skip the parallel-scaling benchmark (serial-only machines)",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="gate without recording the run in the history file",
    )
    args = parser.parse_args(argv)

    if args.skip_run:
        if args.perf is None:
            parser.error("--skip-run requires --perf")
        perf = json.loads(args.perf.read_text())
        parallel = (
            json.loads(args.parallel.read_text()) if args.parallel else None
        )
        serving = (
            json.loads(args.serving.read_text()) if args.serving else None
        )
    else:
        run_parallel = not args.no_parallel
        if run_parallel and (os.cpu_count() or 1) <= 1:
            # A workers=N vs workers=0 ratio on a single-core box measures
            # only scheduling overhead; gating on it would flag phantom
            # regressions, so the comparison is skipped, loudly.
            print(
                "bench-gate: SKIP parallel-scaling comparison — "
                f"os.cpu_count()={os.cpu_count()!r} provides no real "
                "parallelism, so worker-pool speedup ratios would be "
                "meaningless (run on a multi-core machine to gate them)"
            )
            run_parallel = False
        with tempfile.TemporaryDirectory(prefix="bench-gate-") as scratch:
            perf = _run_quick_bench(
                "bench_perf_trajectory.py", Path(scratch) / "perf.json"
            )
            parallel = None
            if run_parallel:
                parallel = _run_quick_bench(
                    "bench_parallel_scaling.py", Path(scratch) / "parallel.json"
                )
            serving = None
            if not args.no_serving:
                serving = _run_quick_bench(
                    "bench_serving.py",
                    Path(scratch) / "serving.json",
                    ("--burst", "--check-determinism"),
                )

    record = distil(perf, parallel)
    if serving is not None:
        record["serving"] = distil_serving(serving)
    history = load_history(args.history)
    failures = gate(record, history, args.tolerance)
    failures.extend(gate_serving(record, history))
    record["status"] = "pass" if not failures else "fail"

    if not args.no_append:
        with args.history.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    baseline_count = sum(
        1
        for e in history
        if e.get("status") == "pass" and _comparable(record, e)
    )
    print(
        f"bench-gate: fig9 speedup {record['fig9']['speedup']}x, "
        f"{len(record['fig11'])} fig11 cells, "
        f"{len(record.get('scale_sweep', []))} scale cells "
        f"(REPRO_SCALE={record.get('repro_scale', 1.0)}), "
        f"{'parallel sections: %d, ' % len(record.get('parallel', {})) if parallel else ''}"
        f"{'serving arms: %d, ' % len(record.get('serving', {})) if serving else ''}"
        f"baseline entries: {baseline_count}"
    )
    for failure in failures:
        print(f"bench-gate: FAIL {failure}")
    if failures:
        return 1
    print(
        "bench-gate: pass"
        + (" (seeded baseline)" if baseline_count == 0 else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
