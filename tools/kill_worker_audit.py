"""Worker-SIGKILL audit for the self-healing region pool (CI gate).

The supervision contract (docs/ARCHITECTURE.md §14) is that process
death inside the pool is invisible to the run's observables: a worker
killed mid-claim costs wall-clock time — its task is requeued, a
replacement is spawned, a repeat-offender region is poisoned to inline
prepare, and total loss degrades the pool to serial operation — but
every region trace, comparison count, virtual-clock reading, reported
identity set and satisfaction score must stay **bit-identical** to the
``workers=0`` serial engine.  Unit tests cover the supervisor's book-
keeping; this audit delivers real ``SIGKILL``s:

1. run the Figure-1 workload serially — the **reference** observables;
2. replay it under the pool at three distinct kill points:
   *first claim* (worker 0 dies claiming its first task), *mid-stream*
   (every initial worker dies on its third claim), and *total loss*
   (every worker including respawns dies on first claim until the
   restart budget is spent and the pool falls back to serial);
3. replay once more with a **poison region** — the serial trace's first
   region kills every process that claims it until the quarantine
   threshold routes it to inline prepare for good;
4. diff every pinned observable against the reference, and check the
   health counters: requeues/restarts/poisons nonzero exactly where the
   kill plan dictates, all zero under the no-fault plan.

Workers die by ``os.kill(getpid(), SIGKILL)`` at claim time — no
cleanup, no atexit, exactly what an OOM kill looks like — so the audit
runs in-process: the driver is never the victim.

Usage::

    python -m tools.kill_worker_audit                 # 3 seeds x 2 sizes
    python -m tools.kill_worker_audit --quick         # 1 seed, workers=2
    python -m tools.kill_worker_audit --seeds 7 11 --workers 4

Exit status 0 iff every killed run is bit-identical to its reference
and every counter matches its plan.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

DEFAULT_SEEDS = (11, 23, 47)
DEFAULT_WORKER_SIZES = (2, 4)
CARDINALITY = 120


def _build_inputs(seed: int):
    """Deterministic inputs: the Figure-1 workload over a seeded pair."""
    from repro.contracts import c2
    from repro.datagen import generate_pair
    from repro.robustness.chaos import figure1_workload

    workload = figure1_workload()
    pair = generate_pair(
        "independent", CARDINALITY, 4, selectivity=0.05, seed=seed
    )
    contracts = {q.name: c2(scale=100.0) for q in workload}
    return pair, workload, contracts


def _observables(result) -> "tuple[object, ...]":
    """Everything pinned between serial reference and killed runs."""
    return (
        tuple(result.stats.region_trace),
        result.stats.skyline_comparisons,
        result.stats.coarse_comparisons,
        result.stats.elapsed,
        result.reported,
        result.degraded,
        tuple(sorted(result.stats.summary().items())),
        tuple(
            (q.name, result.satisfaction(q.name)) for q in result.workload
        ),
    )


def _scenarios(seed: int, workers: int, first_region: int):
    """The audited kill plans: (label, plan, budget, expectations)."""
    from repro.robustness.faults import WorkerKillPlan

    return (
        (
            "no-fault",
            None,
            3,
            {"restarts": 0, "requeues": 0, "poison_regions": 0},
        ),
        (
            "first-claim kill",
            WorkerKillPlan(kills=((0, 1),)),
            3,
            {"restarts": "nonzero", "requeues": "nonzero"},
        ),
        (
            "mid-stream kills",
            WorkerKillPlan(kills=tuple((wid, 3) for wid in range(workers))),
            2 * workers,
            {"restarts": "nonzero", "requeues": "nonzero"},
        ),
        (
            "all workers dead",
            WorkerKillPlan(kill_all_after=1),
            workers,
            {"degraded": True, "workers_alive": 0},
        ),
        (
            "poison region",
            WorkerKillPlan(poison_regions=(first_region,)),
            2 * workers + 2,
            {"poison_regions": "nonzero"},
        ),
    )


def _check_health(health: "dict", expect: "dict") -> "list[str]":
    problems: "list[str]" = []
    for name, want in expect.items():
        got = health.get(name)
        if want == "nonzero":
            if not got:
                problems.append(f"{name} expected nonzero, got {got!r}")
        elif got != want:
            problems.append(f"{name} expected {want!r}, got {got!r}")
    return problems


def audit_seed(seed: int, workers: int) -> "list[str]":
    """Run every scenario for one (seed, pool size); return failures."""
    import dataclasses

    from repro.core import CAQE, CAQEConfig

    pair, workload, contracts = _build_inputs(seed)

    def execute(config):
        return CAQE(config).run(
            pair.left, pair.right, workload, contracts
        )

    reference = execute(CAQEConfig(workers=0))
    expected = _observables(reference)
    base = CAQEConfig(workers=workers)
    failures: "list[str]" = []
    print(f"seed {seed}, workers={workers}:")
    for label, plan, budget, expect in _scenarios(
        seed, workers, reference.stats.region_trace[0]
    ):
        result = execute(
            dataclasses.replace(
                base, pool_kill_plan=plan, pool_restart_budget=budget
            )
        )
        problems: "list[str]" = []
        if _observables(result) != expected:
            problems.append("observables diverged from serial reference")
        health = result.stats.pool_health or {}
        problems.extend(_check_health(health, expect))
        if label == "poison region" and "pool" not in result.quarantine:
            problems.append("poisoned region missing from quarantine report")
        if label == "no-fault" and "pool" in result.quarantine:
            problems.append("healthy run produced a pool quarantine report")
        status = "ok  " if not problems else "FAIL"
        print(
            f"  {status} {label:18s} "
            f"restarts={health.get('restarts')} "
            f"requeues={health.get('requeues')} "
            f"poison={health.get('poison_regions')} "
            f"degraded={health.get('degraded')}"
        )
        for problem in problems:
            print(f"       - {problem}")
        failures.extend(f"seed {seed} workers={workers} {label}: {p}"
                        for p in problems)
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.kill_worker_audit",
        description="real-SIGKILL bit-identity audit of pool supervision",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS)
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKER_SIZES),
        help="pool sizes to audit (default: 2 4)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one seed, workers=2 (fast pre-commit check)",
    )
    args = parser.parse_args(argv)
    seeds = args.seeds[:1] if args.quick else args.seeds
    sizes = [2] if args.quick else args.workers

    failures: "list[str]" = []
    for seed in seeds:
        for workers in sizes:
            failures.extend(audit_seed(seed, workers))
    if failures:
        print(f"kill-worker audit: {len(failures)} failure(s)")
        return 1
    print(
        "kill-worker audit: all observables bit-identical under "
        f"{len(seeds)} seed(s) x {len(sizes)} pool size(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
