"""File collection and rule dispatch for ``caqe-check``.

Rules come in two shapes:

* **file rules** — ``check(file: CheckedFile) -> list[Violation]``; run on
  every collected ``*.py`` file whose path matches the rule's scope;
* **project rules** — ``check_project(files, docs_text) -> list[Violation]``;
  run once over the whole collection (cross-file invariants such as the
  CQ004 config-flag registry).

Paths are normalised to POSIX form so scope matching by path fragment
(``/core/``, ``repro/rng.py``) behaves identically on every platform and
for fixture trees created under a tmpdir.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from tools.caqe_check.pragma import Suppressions, parse_pragmas
from tools.caqe_check.report import Violation


@dataclass
class CheckedFile:
    """One parsed source file plus its pragma index."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def violation(self, node: ast.AST, code: str, message: str) -> "Violation | None":
        """Build a :class:`Violation` unless a pragma suppresses it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.is_suppressed(code, line):
            return None
        return Violation(self.posix, line, col, code, message)


def load_file(path: Path) -> "CheckedFile | Violation | None":
    """Parse ``path``.

    Returns the parsed :class:`CheckedFile`, a ``CQ000``
    :class:`Violation` when the file exists but does not parse (a typo
    must not silently hide a whole file from every rule), or ``None``
    when the file cannot be read at all.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        detail = getattr(exc, "msg", None) or str(exc)
        return Violation(
            path.as_posix(),
            int(line),
            0,
            "CQ000",
            f"file does not parse ({detail}); every rule is blind to it "
            "(suppress with --allow-syntax-errors)",
        )
    return CheckedFile(path, source, tree, parse_pragmas(source))


def collect_files(
    paths: "list[Path]",
) -> "tuple[list[CheckedFile], list[Violation]]":
    """Expand files/directories into parsed records + CQ000 diagnostics."""
    seen: "set[Path]" = set()
    ordered: "list[Path]" = []
    for root in paths:
        candidates = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            ordered.append(candidate)
    files: "list[CheckedFile]" = []
    errors: "list[Violation]" = []
    for path in ordered:
        loaded = load_file(path)
        if isinstance(loaded, CheckedFile):
            files.append(loaded)
        elif isinstance(loaded, Violation):
            errors.append(loaded)
    return files, errors


def run_checks(
    paths: "list[Path]",
    *,
    docs_path: "Path | None" = None,
    select: "set[str] | None" = None,
    allow_syntax_errors: bool = False,
) -> "list[Violation]":
    """Run every (selected) rule over ``paths`` and return sorted hits."""
    from tools.caqe_check.rules import FILE_RULES, PROJECT_RULES, SYNTAX_ERROR_CODE

    files, errors = collect_files(paths)
    violations: "list[Violation]" = []
    if not allow_syntax_errors and (select is None or SYNTAX_ERROR_CODE in select):
        violations.extend(errors)
    for rule in FILE_RULES:
        if select and rule.CODE not in select:
            continue
        for file in files:
            violations.extend(rule.check(file))
    docs_text = None
    if docs_path is not None and docs_path.exists():
        docs_text = docs_path.read_text(encoding="utf-8")
    for rule in PROJECT_RULES:
        if select and rule.CODE not in select:
            continue
        violations.extend(rule.check_project(files, docs_text))
    return sorted(violations)


# --------------------------------------------------------------------- #
# Shared AST helpers used by several rules
# --------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> "tuple[str, ...] | None":
    """``np.random.default_rng`` -> ("np", "random", "default_rng")."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def contains_compare(node: ast.AST, ops: "tuple[type, ...]") -> bool:
    """True iff ``node`` contains a comparison using one of ``ops``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Compare) and any(
            isinstance(op, ops) for op in sub.ops
        ):
            return True
    return False
