"""``# caqe-check: disable=RULE`` suppression pragmas.

Three placements are honoured:

* **same line** — suppresses the named rules on that line only;
* **standalone line** — a comment-only line suppresses the named rules on
  the next non-blank line (handy above multi-line statements);
* **file header** — a standalone pragma before the first statement or
  docstring suppresses the named rules for the whole file.

``disable=all`` suppresses every rule.  Rule names are comma-separated and
case-insensitive (``CQ001`` canonical).

Decorated definitions get one extra accommodation: project rules (CQ010+)
anchor violations at the ``def``/``class`` line, but a pragma written
above the definition lands on the *decorator* line first.  Any pragma
that binds to a decorator line is therefore extended to the decorated
definition's own line as well, so ``# caqe-check: disable=CQ010`` above
``@dataclass`` suppresses as the author intended.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

_PRAGMA_RE = re.compile(
    r"#\s*caqe-check:\s*disable\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: Sentinel rule name that matches every rule code.
ALL = "ALL"


def _parse_rules(comment: str) -> "frozenset[str] | None":
    match = _PRAGMA_RE.search(comment)
    if match is None:
        return None
    rules = frozenset(
        part.strip().upper()
        for part in match.group("rules").split(",")
        if part.strip()
    )
    return rules or None


class Suppressions:
    """Per-file pragma index answering ``is_suppressed(code, line)``."""

    def __init__(
        self,
        line_rules: "dict[int, frozenset[str]]",
        file_rules: "frozenset[str]",
    ) -> None:
        self._line_rules = line_rules
        self._file_rules = file_rules

    def is_suppressed(self, code: str, line: int) -> bool:
        code = code.upper()
        if ALL in self._file_rules or code in self._file_rules:
            return True
        rules = self._line_rules.get(line)
        if rules is None:
            return False
        return ALL in rules or code in rules


def parse_pragmas(source: str) -> Suppressions:
    """Scan ``source`` once with :mod:`tokenize` and index its pragmas."""
    line_rules: "dict[int, set[str]]" = {}
    file_rules: "set[str]" = set()
    pending: "list[tuple[int, frozenset[str]]]" = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    code_lines: "set[int]" = set()
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        code_lines.add(tok.start[0])
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        rules = _parse_rules(tok.string)
        if rules is None:
            continue
        line = tok.start[0]
        if line in code_lines:
            line_rules.setdefault(line, set()).update(rules)
        elif not any(code_line <= line for code_line in code_lines):
            # Standalone pragma above every statement: file-wide.
            file_rules.update(rules)
        else:
            pending.append((line, rules))
    # A standalone pragma applies to the next line that holds code.
    for line, rules in pending:
        targets = [code_line for code_line in code_lines if code_line > line]
        if targets:
            line_rules.setdefault(min(targets), set()).update(rules)
    # Pragmas bound to a decorator line also cover the decorated
    # definition's own line (where def-anchored rules report).
    decorator_map = _decorator_lines(source)
    for line in sorted(set(line_rules) & set(decorator_map)):
        line_rules.setdefault(decorator_map[line], set()).update(
            line_rules[line]
        )
    return Suppressions(
        {line: frozenset(rules) for line, rules in line_rules.items()},
        frozenset(file_rules),
    )


def _decorator_lines(source: str) -> "dict[int, int]":
    """Map every decorator line to its definition's ``def``/``class`` line."""
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return {}
    mapping: "dict[int, int]" = {}
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        for line in range(node.decorator_list[0].lineno, node.lineno):
            mapping[line] = node.lineno
    return mapping
