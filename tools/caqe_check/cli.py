"""Command-line front end: ``python -m tools.caqe_check [paths...]``.

Default run lints the given paths (``src/repro`` when omitted) with
CQ001–CQ012 and exits 1 on any violation.  The two companion gates ride
on the same entry point:

* ``--mypy`` — run ``mypy --strict`` over the typed packages (config in
  ``pyproject.toml``); skipped with a notice when mypy is not installed,
  so offline environments stay green;
* ``--determinism`` — run :mod:`tools.determinism_audit` (two child
  interpreters under different ``PYTHONHASHSEED`` values);
* ``--all`` — lint + both gates, the CI configuration.

Whole-program options:

* ``--format {text,json,sarif}`` — machine-readable reports (SARIF is
  what CI uploads as a workflow artifact);
* ``--cache-dir DIR`` / ``--no-cache`` — content-hash summary cache for
  the CQ010–CQ012 analysis (default: ``.caqe-check-cache/`` under the
  repo root; the key hashes every scanned source *and* the analysis
  code, so stale hits are impossible);
* ``--dump-summaries PATH`` — write the effect/call-graph summaries as
  deterministic JSON (``-`` for stdout); two runs are byte-identical;
* ``--max-seconds N`` — fail if the lint pass exceeds the budget (CI
  uses 60 s to keep the whole-program pass honest);
* ``--allow-syntax-errors`` — demote CQ000 (unparseable file) to a
  notice instead of a violation.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

from tools.caqe_check.engine import collect_files, run_checks
from tools.caqe_check.report import render_json, render_report, render_sarif

#: Repo root = parent of the ``tools`` package.
REPO_ROOT = Path(__file__).resolve().parent.parent.parent

DEFAULT_PATHS = ("src/repro",)
DOCS_PATH = "docs/ARCHITECTURE.md"
DEFAULT_CACHE_DIR = ".caqe-check-cache"

_RENDERERS = {
    "text": render_report,
    "json": render_json,
    "sarif": render_sarif,
}


def run_lint(
    paths: "list[str]",
    select: "set[str] | None",
    *,
    fmt: str = "text",
    allow_syntax_errors: bool = False,
    output: "Path | None" = None,
) -> int:
    roots = [Path(p) for p in paths]
    docs = REPO_ROOT / DOCS_PATH
    violations = run_checks(
        roots,
        docs_path=docs,
        select=select,
        allow_syntax_errors=allow_syntax_errors,
    )
    rendered = _RENDERERS[fmt](violations)
    if output is not None:
        output.write_text(rendered + "\n", encoding="utf-8")
        print(
            f"caqe-check: wrote {fmt} report ({len(violations)} violation(s)) "
            f"to {output}"
        )
    else:
        print(rendered)
    return 1 if violations else 0


def dump_summaries(paths: "list[str]", destination: str) -> int:
    """Write the whole-program analysis summaries as deterministic JSON."""
    from tools.caqe_check.effects import analyze_program

    files, _errors = collect_files([Path(p) for p in paths])
    rendered = analyze_program(files).to_json()
    if destination == "-":
        print(rendered)
    else:
        Path(destination).write_text(rendered + "\n", encoding="utf-8")
        print(f"caqe-check: wrote effect summaries to {destination}")
    return 0


def run_mypy_gate() -> int:
    """``mypy --strict`` over the typed packages; soft-skip when absent."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        print("caqe-check: mypy not installed; typing gate skipped")
        return 0
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
    )
    return result.returncode


def run_determinism_gate() -> int:
    from tools.determinism_audit import main as audit_main

    return audit_main([])


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="caqe-check",
        description="CAQE invariant linter + typing & determinism gates",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only the named rule(s), e.g. --select CQ001",
    )
    parser.add_argument(
        "--format",
        choices=sorted(_RENDERERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--allow-syntax-errors",
        action="store_true",
        help="do not fail on CQ000 (unparseable files)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=REPO_ROOT / DEFAULT_CACHE_DIR,
        help="effect-summary cache directory "
        f"(default: <repo>/{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the effect-summary disk cache",
    )
    parser.add_argument(
        "--dump-summaries",
        metavar="PATH",
        default=None,
        help="write whole-program effect summaries as JSON ('-' = stdout)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="N",
        help="fail if the lint pass takes longer than N seconds",
    )
    parser.add_argument(
        "--mypy", action="store_true", help="also run the mypy --strict gate"
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help="also run the PYTHONHASHSEED determinism audit",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="lint + mypy gate + determinism audit (CI configuration)",
    )
    args = parser.parse_args(argv)

    from tools.caqe_check.effects import configure_cache

    configure_cache(None if args.no_cache else args.cache_dir)

    select = (
        {rule.upper() for rule in args.select} if args.select else None
    )
    if args.dump_summaries is not None:
        return dump_summaries(args.paths, args.dump_summaries)

    started = time.monotonic()
    status = run_lint(
        args.paths,
        select,
        fmt=args.format,
        allow_syntax_errors=args.allow_syntax_errors,
        output=args.output,
    )
    elapsed = time.monotonic() - started
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"caqe-check: FAIL lint pass took {elapsed:.1f}s "
            f"(budget {args.max_seconds:.0f}s) — the whole-program analysis "
            "must stay fast; check the summary cache"
        )
        status = max(status, 1)
    if args.mypy or args.all:
        status = max(status, run_mypy_gate())
    if args.determinism or args.all:
        status = max(status, run_determinism_gate())
    return status


if __name__ == "__main__":
    raise SystemExit(main())
