"""Command-line front end: ``python -m tools.caqe_check [paths...]``.

Default run lints the given paths (``src/repro`` when omitted) with
CQ001–CQ005 and exits 1 on any violation.  The two companion gates ride
on the same entry point:

* ``--mypy`` — run ``mypy --strict`` over the typed packages (config in
  ``pyproject.toml``); skipped with a notice when mypy is not installed,
  so offline environments stay green;
* ``--determinism`` — run :mod:`tools.determinism_audit` (two child
  interpreters under different ``PYTHONHASHSEED`` values);
* ``--all`` — lint + both gates, the CI configuration.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from tools.caqe_check.engine import run_checks
from tools.caqe_check.report import render_report

#: Repo root = parent of the ``tools`` package.
REPO_ROOT = Path(__file__).resolve().parent.parent.parent

DEFAULT_PATHS = ("src/repro",)
DOCS_PATH = "docs/ARCHITECTURE.md"


def run_lint(paths: "list[str]", select: "set[str] | None") -> int:
    roots = [Path(p) for p in paths]
    docs = REPO_ROOT / DOCS_PATH
    violations = run_checks(roots, docs_path=docs, select=select)
    print(render_report(violations))
    return 1 if violations else 0


def run_mypy_gate() -> int:
    """``mypy --strict`` over the typed packages; soft-skip when absent."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        print("caqe-check: mypy not installed; typing gate skipped")
        return 0
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
    )
    return result.returncode


def run_determinism_gate() -> int:
    from tools.determinism_audit import main as audit_main

    return audit_main([])


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="caqe-check",
        description="CAQE invariant linter + typing & determinism gates",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only the named rule(s), e.g. --select CQ001",
    )
    parser.add_argument(
        "--mypy", action="store_true", help="also run the mypy --strict gate"
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help="also run the PYTHONHASHSEED determinism audit",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="lint + mypy gate + determinism audit (CI configuration)",
    )
    args = parser.parse_args(argv)

    select = (
        {rule.upper() for rule in args.select} if args.select else None
    )
    status = run_lint(args.paths, select)
    if args.mypy or args.all:
        status = max(status, run_mypy_gate())
    if args.determinism or args.all:
        status = max(status, run_determinism_gate())
    return status


if __name__ == "__main__":
    raise SystemExit(main())
