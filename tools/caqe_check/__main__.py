"""``python -m tools.caqe_check`` entry point."""

from tools.caqe_check.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
