"""Audited effect grants for the worker-reachable prepare plane (CQ010).

CQ010 requires every function reachable from the worker entry points to
have an **empty** forbidden-effect set.  A handful of functions hold
deliberate, reviewed exceptions; each entry grants *specific* effects to
*one* qualified function with a recorded justification — there are no
blanket pragmas on the prepare plane.

Refreshing the list: run ``python -m tools.caqe_check --select CQ010``
after changing anything under ``repro/parallel``; a new violation names
the function, its effect, and the call chain from the worker root.
Either make the function pure or — if the effect is contained by design,
as below — add an entry here, with the reason spelled out.  Entries go
stale loudly: once the named function loses the granted effect (or drops
out of the worker-reachable set) CQ010 reports the grant itself, so the
allowlist can only shrink back in step with the code.
"""

from __future__ import annotations

from tools.caqe_check.effects import IO, MUTATES_NONLOCAL, SPAWNS_PROCESS

#: qualname → {effect → audited justification}.
ALLOWED_EFFECTS: "dict[str, dict[str, str]]" = {
    "repro.parallel.worker:worker_main": {
        IO: (
            "orphan-reparenting watchdog reads os.getppid() while idle; "
            "the value never flows into any payload or observable"
        ),
    },
    "repro.parallel.worker:_kill_self": {
        IO: (
            "chaos kill switch reads os.getpid() to target itself; the "
            "process is dead one line later, so nothing can leak"
        ),
        SPAWNS_PROCESS: (
            "os.kill(getpid(), SIGKILL) — the single audited point where "
            "a WorkerKillPlan trigger dies; fires only under an active "
            "kill plan (chaos testing), after the claim write and before "
            "any result put, so the supervisor's requeue stays exact"
        ),
    },
    "repro.parallel.worker:_WorkerState._resolve": {
        MUTATES_NONLOCAL: (
            "appends attached shared-memory segments to the worker-local "
            "registry so buffers outlive the views borrowed from them"
        ),
    },
    "repro.parallel.worker:_WorkerState.prepare": {
        MUTATES_NONLOCAL: (
            "per-worker build-side key cache (self._left_keys) — "
            "memoisation of a pure function of immutable inputs; each "
            "worker's cache is private, so hits/misses cannot change any "
            "observable"
        ),
    },
    "repro.parallel.shm:attach_relation": {
        IO: (
            "multiprocessing.shared_memory attach — the sanctioned "
            "zero-copy relation transport; read-only for workers"
        ),
    },
}

__all__ = ["ALLOWED_EFFECTS"]
