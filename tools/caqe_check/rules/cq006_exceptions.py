"""CQ006 — exception discipline for the recovery paths.

The robustness layer (docs/ARCHITECTURE.md §9) retries and quarantines
failing regions; if recovery code caught bare ``Exception`` it would also
swallow programming errors (``TypeError``, ``KeyError`` from a refactor)
and convert bugs into silent data loss.  Inside ``src/repro`` this rule
forbids:

* ``except:`` — the bare clause;
* ``except Exception:`` / ``except BaseException:`` — including either
  class inside a tuple handler.

A broad handler is permitted when its body *re-raises* (contains a bare
``raise``), the idiom for cleanup-then-propagate.  Handlers must
otherwise name what they expect — normally a
:class:`repro.errors.ReproError` subclass.  Deliberate broad catches at
a process boundary can carry ``# caqe-check: disable=CQ006``.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile, dotted_name
from tools.caqe_check.report import Violation

CODE = "CQ006"

_BANNED = {"Exception", "BaseException"}


def _in_scope(posix: str) -> bool:
    return "repro/" in posix


def _names_banned_class(node: "ast.expr | None") -> "str | None":
    """The banned class name a handler type mentions, if any."""
    if node is None:
        return None
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            hit = _names_banned_class(element)
            if hit is not None:
                return hit
        return None
    chain = dotted_name(node)
    if chain is not None and chain[-1] in _BANNED:
        return chain[-1]
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True iff the handler body contains a bare ``raise``."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    violations: "list[Violation]" = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _reraises(node):
            continue
        if node.type is None:
            message = (
                "bare 'except:' swallows programming errors; catch a "
                "ReproError subclass or re-raise"
            )
        else:
            banned = _names_banned_class(node.type)
            if banned is None:
                continue
            message = (
                f"'except {banned}:' swallows programming errors; catch a "
                "ReproError subclass or re-raise"
            )
        violation = file.violation(node, CODE, message)
        if violation is not None:
            violations.append(violation)
    return violations
