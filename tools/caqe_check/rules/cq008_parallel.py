"""CQ008 — process parallelism only via the deterministic region pool.

The parallel layer (docs/ARCHITECTURE.md §11) guarantees bit-identical
observables because *all* multi-process execution funnels through
``repro.parallel.RegionPool``: pure prepare work in workers, every
commit applied by the driver in serial benefit order.  A stray
``multiprocessing.Pool`` (or executor / raw fork) elsewhere in the
engine would bypass the commit protocol and reintroduce scheduling
nondeterminism, so inside ``src/repro`` — but outside
``src/repro/parallel/`` — this rule forbids:

* ``import multiprocessing`` / ``from multiprocessing import ...``
  (including submodules such as ``multiprocessing.pool``);
* ``import concurrent.futures`` / ``from concurrent.futures import
  ...`` — both process and thread pools construct futures-based fan-out
  that sidesteps the deterministic pool;
* calls to ``os.fork`` / ``os.forkpty``.

Thread primitives (``threading``) stay allowed: the serving layer uses
them for admission control, and threads never skip the commit point.
Deliberate exceptions can carry ``# caqe-check: disable=CQ008``.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile, dotted_name
from tools.caqe_check.report import Violation

CODE = "CQ008"

_BANNED_MODULES = ("multiprocessing", "concurrent")
_BANNED_OS_CALLS = {"fork", "forkpty"}


def _in_scope(posix: str) -> bool:
    return "repro/" in posix and "repro/parallel/" not in posix


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    violations: "list[Violation]" = []

    def emit(node: ast.AST, message: str) -> None:
        violation = file.violation(node, CODE, message)
        if violation is not None:
            violations.append(violation)

    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    emit(
                        node,
                        f"import of {alias.name!r}: process parallelism "
                        "must go through repro.parallel.RegionPool (the "
                        "deterministic commit protocol)",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = (node.module or "").split(".")[0]
            if module in _BANNED_MODULES:
                emit(
                    node,
                    f"import from {node.module!r}: process parallelism "
                    "must go through repro.parallel.RegionPool (the "
                    "deterministic commit protocol)",
                )
        elif isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is None or len(chain) < 2:
                continue
            if chain[0] == "os" and chain[-1] in _BANNED_OS_CALLS:
                emit(
                    node,
                    f"call to os.{chain[-1]}: raw forks bypass the "
                    "deterministic region pool (repro.parallel)",
                )
    return violations
