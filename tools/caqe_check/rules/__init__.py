"""Rule registry for ``caqe-check``.

``FILE_RULES`` run per file; ``PROJECT_RULES`` run once over the whole
collection.  Order is the report order for equal (path, line) hits.
"""

from tools.caqe_check.rules import (
    cq001_rng,
    cq002_dominance,
    cq003_iteration,
    cq004_config,
    cq005_float_eq,
    cq006_exceptions,
    cq007_wallclock,
    cq008_parallel,
    cq009_rowloop,
)

FILE_RULES = (
    cq001_rng,
    cq002_dominance,
    cq003_iteration,
    cq005_float_eq,
    cq006_exceptions,
    cq007_wallclock,
    cq008_parallel,
    cq009_rowloop,
)
PROJECT_RULES = (cq004_config,)

ALL_CODES = tuple(rule.CODE for rule in FILE_RULES + PROJECT_RULES)

__all__ = ["ALL_CODES", "FILE_RULES", "PROJECT_RULES"]
