"""Rule registry for ``caqe-check``.

``FILE_RULES`` run per file; ``PROJECT_RULES`` run once over the whole
collection.  Order is the report order for equal (path, line) hits.

``CQ000`` (syntax-error diagnostic) is emitted by the engine itself —
an unparseable file cannot carry pragmas or be scanned by any rule, so
it is surfaced before the registry runs.
"""

from tools.caqe_check.rules import (
    cq001_rng,
    cq002_dominance,
    cq003_iteration,
    cq004_config,
    cq005_float_eq,
    cq006_exceptions,
    cq007_wallclock,
    cq008_parallel,
    cq009_rowloop,
    cq010_purity,
    cq011_layers,
    cq012_taint,
    cq013_bounded_waits,
)

FILE_RULES = (
    cq001_rng,
    cq002_dominance,
    cq003_iteration,
    cq005_float_eq,
    cq006_exceptions,
    cq007_wallclock,
    cq008_parallel,
    cq009_rowloop,
    cq013_bounded_waits,
)
PROJECT_RULES = (cq004_config, cq010_purity, cq011_layers, cq012_taint)

#: Engine-level diagnostic code (not a rule module).
SYNTAX_ERROR_CODE = "CQ000"

ALL_CODES = (SYNTAX_ERROR_CODE,) + tuple(
    rule.CODE for rule in FILE_RULES + PROJECT_RULES
)

__all__ = ["ALL_CODES", "FILE_RULES", "PROJECT_RULES", "SYNTAX_ERROR_CODE"]
