"""CQ004 — config-flag registry.

Every ``CAQEConfig`` field is an experiment surface: ablation corners are
meaningful only if the flag is actually consulted somewhere, and
reproducible only if it is documented.  This project rule parses the
``CAQEConfig`` dataclass, then requires each field to be

* **read** somewhere in the scanned tree — an attribute load with the
  field's name outside the field's own definition line; and
* **documented** — mentioned (word-boundary match) in
  ``docs/ARCHITECTURE.md`` (or the docs text handed to the checker).

A field can opt out with ``# caqe-check: disable=CQ004`` on its
definition line.
"""

from __future__ import annotations

import ast
import re

from tools.caqe_check.engine import CheckedFile
from tools.caqe_check.report import Violation

CODE = "CQ004"

_CONFIG_CLASS = "CAQEConfig"


def _find_config_class(
    files: "list[CheckedFile]",
) -> "tuple[CheckedFile, ast.ClassDef] | None":
    for file in files:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
                return file, node
    return None


def _config_fields(cls: ast.ClassDef) -> "list[tuple[str, int]]":
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append((stmt.target.id, stmt.lineno))
    return fields


def _attribute_reads(files: "list[CheckedFile]") -> "set[str]":
    reads: "set[str]" = set()
    for file in files:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                reads.add(node.attr)
    return reads


def check_project(
    files: "list[CheckedFile]", docs_text: "str | None"
) -> "list[Violation]":
    located = _find_config_class(files)
    if located is None:
        return []
    config_file, cls = located
    reads = _attribute_reads(files)
    violations: "list[Violation]" = []

    def emit(line: int, message: str) -> None:
        if config_file.suppressions.is_suppressed(CODE, line):
            return
        violations.append(Violation(config_file.posix, line, 0, CODE, message))

    for name, line in _config_fields(cls):
        if name not in reads:
            emit(
                line,
                f"config field {name!r} is never read in the scanned tree "
                "(dead ablation flag?)",
            )
        if docs_text is not None and not re.search(
            rf"\b{re.escape(name)}\b", docs_text
        ):
            emit(
                line,
                f"config field {name!r} is not mentioned in "
                "docs/ARCHITECTURE.md",
            )
    return violations
