"""CQ003 — iteration-order hygiene in the scheduler/executor layer.

Algorithm 1's region choice must be a deterministic function of the
CSM/benefit model (Eq. 8–10): bit-identical ``region_trace`` across runs
is a tested guarantee.  ``set``/``frozenset`` iteration order depends on
``PYTHONHASHSEED`` for ``str`` (and generally on insertion history), so a
set iterated inside the scheduling path can silently leak hash order into
the region schedule.  ``dict.keys()`` rides along per the audit policy:
iterate the dict itself (explicitly insertion-ordered) or sort.

Scope: modules under ``core/`` — the scheduler/executor layer.  Flagged:
``for`` loops and comprehensions whose iterable is

* a ``set``/``frozenset`` literal, comprehension, or constructor call;
* a ``.keys()`` call;
* a local name bound to one of the above in the same scope;

unless the iterable is wrapped in ``sorted(...)``.  Loops whose order is
provably irrelevant can carry ``# caqe-check: disable=CQ003``.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile, dotted_name
from tools.caqe_check.report import Violation

CODE = "CQ003"

_SCOPE_FRAGMENT = "/core/"


def _in_scope(posix: str) -> bool:
    return _SCOPE_FRAGMENT in posix


def _is_set_expr(node: ast.AST) -> "str | None":
    """Describe ``node`` if it produces a set-like or ``.keys()`` view."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return "set expression"
    if isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        if chain is not None and chain[-1] in ("set", "frozenset") and len(chain) == 1:
            return f"{chain[-1]}() result"
        if chain is not None and chain[-1] == "keys":
            return ".keys() view"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return ".keys() view"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # set algebra (a & b, a | b, a - b) — only set-like when an operand
        # is itself set-like; conservative: require one classified operand.
        if _is_set_expr(node.left) or _is_set_expr(node.right):
            return "set expression"
    return None


class _ScopeVisitor:
    """Track set-bound names per function scope and flag iterations."""

    def __init__(self, file: CheckedFile) -> None:
        self.file = file
        self.violations: "list[Violation]" = []

    def _iterable_kind(
        self, node: ast.AST, set_names: "dict[str, str]"
    ) -> "str | None":
        direct = _is_set_expr(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Name):
            return set_names.get(node.id)
        return None

    def scan(self, body: "list[ast.stmt]") -> None:
        set_names: "dict[str, str]" = {}
        nodes: "list[ast.AST]" = []
        stack: "list[ast.AST]" = [
            stmt
            for stmt in body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        while stack:
            node = stack.pop()
            nodes.append(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)
        for node in nodes:
            if isinstance(node, ast.Assign):
                kind = _is_set_expr(node.value)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_names[target.id] = kind
        iterables: "list[tuple[ast.AST, ast.AST]]" = []
        for node in nodes:
            if isinstance(node, ast.For):
                iterables.append((node, node.iter))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    iterables.append((node, generator.iter))
        for anchor, iterable in iterables:
            kind = self._iterable_kind(iterable, set_names)
            if kind is None:
                continue
            violation = self.file.violation(
                anchor,
                CODE,
                f"iteration over {kind}: order follows hash/insertion "
                "state; wrap in sorted(...) or iterate a deterministic "
                "container",
            )
            if violation is not None:
                self.violations.append(violation)


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    visitor = _ScopeVisitor(file)
    scopes: "list[list[ast.stmt]]" = [file.tree.body]
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node.body)
    for body in scopes:
        visitor.scan(body)
    return visitor.violations
