"""CQ013 — bounded waits in the serving layer (docs/ARCHITECTURE.md §15.5).

Every blocking wait in ``src/repro/serving`` must carry a bound.  The
serving layer is the only part of the tree where threads park on
synchronisation primitives; an unbounded ``Queue.get()`` / ``Event.wait()``
/ ``Lock.acquire()`` turns any lost wakeup (or a peer that died without
signalling) into a permanent hang — the exact failure mode the
overload-safety work exists to rule out.  Loops that need to block
forever in spirit must wake on a timeout tick and re-check their exit
condition instead.

Flagged calls (by attribute name — the linter is type-free, so the rule
is deliberately name-based and the serving layer avoids colliding
method names):

* ``.get()`` with no positional timeout and no ``timeout=`` keyword, or
  with an explicit ``timeout=None`` (``block=False``/``block=0`` is
  non-blocking and therefore fine);
* ``.wait()`` with no arguments or an explicit ``timeout=None``;
* ``.acquire()`` with no arguments or ``timeout=-1`` spelled as a bare
  call (``acquire(timeout=...)`` with a real bound is fine).

``with lock:`` blocks are *not* flagged: lock hold times in the serving
layer are bounded by a single region step, and rewriting every context
manager into try/acquire/finally would hurt far more than it helps.

Scope: files whose path contains ``repro/serving/``.  Suppress a
deliberate unbounded wait with ``# caqe-check: disable=CQ013``.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile
from tools.caqe_check.report import Violation

CODE = "CQ013"

#: Blocking-capable method names and the primitive family they belong to.
_BLOCKING_METHODS = {
    "get": "queue.Queue.get",
    "wait": "threading.Event/Condition.wait",
    "acquire": "threading.Lock.acquire",
}


def _is_none(node: "ast.expr | None") -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_falsy_const(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and not node.value


def _unbounded(call: ast.Call, method: str) -> bool:
    """Could this call block forever?

    Conservative in the right direction: a positional argument in the
    timeout slot is treated as a bound (we cannot evaluate it), while an
    explicit ``timeout=None`` — the spelling that *documents* an
    unbounded wait — is always flagged.
    """
    timeout_kw = next(
        (kw for kw in call.keywords if kw.arg == "timeout"), None
    )
    if timeout_kw is not None:
        return _is_none(timeout_kw.value)
    if method == "get":
        # get(block=False) / get_nowait-style spellings never block.
        block_kw = next(
            (kw for kw in call.keywords if kw.arg == "block"), None
        )
        if block_kw is not None and _is_falsy_const(block_kw.value):
            return False
        # Only the spellings that *are* Queue.get-blocking-forever are
        # flagged: ``get()``, ``get(block=True)``, ``get(True)``.  A
        # dict-style ``get(key[, default])`` carries positionals the
        # rule must not confuse with ``block``.
        if not call.args:
            return True
        return (
            len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is True
        )
    if method == "wait":
        # wait(timeout) — any positional is the bound.
        return len(call.args) < 1
    if method == "acquire":
        # acquire(blocking=False) never blocks; acquire(blocking, timeout)
        # carries its bound positionally.
        blocking_kw = next(
            (kw for kw in call.keywords if kw.arg == "blocking"), None
        )
        if blocking_kw is not None and _is_falsy_const(blocking_kw.value):
            return False
        if call.args and _is_falsy_const(call.args[0]):
            return False
        return len(call.args) < 2
    return False


def check(file: CheckedFile) -> "list[Violation]":
    if "repro/serving/" not in file.posix:
        return []
    violations: "list[Violation]" = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        method = func.attr
        family = _BLOCKING_METHODS.get(method)
        if family is None:
            continue
        if _unbounded(node, method):
            violation = file.violation(
                node,
                CODE,
                f"unbounded blocking wait: .{method}() without a timeout "
                f"({family}) can hang the serving layer forever — pass "
                "timeout=<bound> and re-check the exit condition",
            )
            if violation is not None:
                violations.append(violation)
    return violations
