"""CQ010 — worker purity: the prepare plane must be effect-free.

The parallel layer's bit-identity guarantee (docs/ARCHITECTURE.md §11)
rests on workers running *pure* prepare: every observable cost is
charged by the driver at the serial commit point, so a worker that
mutates shared state, performs I/O, reads the clock, draws unseeded
randomness, iterates a set, or spawns a process could silently skew the
schedule — a race the test matrix can only catch probabilistically.

This project rule proves the contract statically: every function
reachable from ``repro.parallel.worker:worker_main`` or
``repro.parallel.worker:prepare_payload`` over the resolved call graph
must have an empty forbidden-effect set.  The audited exceptions (the
per-worker build cache, the shm transport, the orphan watchdog) live in
:mod:`tools.caqe_check.purity_allowlist` as per-function, per-effect
grants — and a grant whose function no longer carries the effect (or
left the reachable set) is itself reported, so the allowlist tracks the
code instead of fossilising.

Violations anchor at the offending function's ``def`` line and carry the
witness call chain from the worker root.
"""

from __future__ import annotations

from tools.caqe_check.effects import (
    IO,
    MUTATES_NONLOCAL,
    SPAWNS_PROCESS,
    UNORDERED_ITER,
    UNSEEDED_RNG,
    WALL_CLOCK,
    analyze_program,
)
from tools.caqe_check.engine import CheckedFile
from tools.caqe_check.purity_allowlist import ALLOWED_EFFECTS
from tools.caqe_check.report import Violation

CODE = "CQ010"

#: Worker entry points (the roots of the prepare plane).
WORKER_ROOTS = (
    "repro.parallel.worker:worker_main",
    "repro.parallel.worker:prepare_payload",
)

FORBIDDEN = (
    MUTATES_NONLOCAL,
    IO,
    WALL_CLOCK,
    UNSEEDED_RNG,
    UNORDERED_ITER,
    SPAWNS_PROCESS,
)


def _suppressions(files: "list[CheckedFile]") -> "dict[str, CheckedFile]":
    return {file.posix: file for file in files}


def check_project(
    files: "list[CheckedFile]", docs_text: "str | None"
) -> "list[Violation]":
    result = analyze_program(files)
    by_path = _suppressions(files)
    roots = [r for r in WORKER_ROOTS if r in result.functions]
    if not roots:
        return []
    violations: "list[Violation]" = []

    def emit(path: str, line: int, message: str) -> None:
        file = by_path.get(path)
        if file is not None and file.suppressions.is_suppressed(CODE, line):
            return
        violations.append(Violation(path, line, 0, CODE, message))

    # Violations anchor at the function that *directly* carries the
    # effect.  Every local callee of a reachable function is itself
    # reachable, so the root cause is always in the report — flagging
    # every transitive caller as well would bury it.  This also makes
    # allowlist grants strictly per-function: a grant on
    # ``_WorkerState.prepare`` covers prepare's own mutation, never an
    # impure helper it might grow a call to.
    reachable = result.reachable_from(list(roots))
    for qualname in reachable:
        info = result.functions[qualname]
        granted = ALLOWED_EFFECTS.get(qualname, {})
        for effect in FORBIDDEN:
            if effect not in info["direct"] or effect in granted:
                continue
            chain = " -> ".join(result.witness_path(list(roots), qualname))
            detail = info["direct"][effect]
            emit(
                info["file"],
                info["line"],
                f"worker-reachable function {qualname.split(':', 1)[1]!r} "
                f"carries forbidden effect {effect} ({detail}); "
                f"prepare plane must be pure [reached via {chain}]",
            )
    # Stale grants: an allowlisted function that is known to the graph
    # but no longer reachable, or no longer carries the granted effect.
    reachable_set = set(reachable)
    for qualname in sorted(ALLOWED_EFFECTS):
        info = result.functions.get(qualname)
        if info is None:
            continue  # not part of this scan (e.g. fixture trees)
        for effect in sorted(ALLOWED_EFFECTS[qualname]):
            stale = (
                qualname not in reachable_set
                or effect not in info["direct"]
            )
            if stale:
                emit(
                    info["file"],
                    info["line"],
                    f"stale purity-allowlist grant: {qualname.split(':', 1)[1]!r} "
                    f"no longer {'carries' if qualname in reachable_set else 'is worker-reachable with'} "
                    f"effect {effect}; remove the entry from "
                    "tools/caqe_check/purity_allowlist.py",
                )
    return violations
