"""CQ007 — wall-clock ban (docs/ARCHITECTURE.md §10).

Run observables are a pure function of the inputs because every charge
goes through the deterministic :class:`~repro.core.clock.VirtualClock`.
A single wall-clock read anywhere on the execution path silently breaks
crash recovery (the journal replay would diverge) and every bit-identity
guarantee the equivalence suites pin down.  Inside ``repro`` this rule
therefore forbids:

* ``import time`` / ``from time import ...`` and any call through
  ``time.*`` (``time.time``, ``time.monotonic``, ``time.perf_counter``,
  ``time.sleep``, ...);
* ``from datetime import ...`` / ``import datetime`` and the wall-clock
  constructors ``datetime.now`` / ``datetime.utcnow`` / ``date.today``
  (and their ``datetime.datetime.now`` spellings).

Exemptions: ``repro/core/clock.py`` (it *defines* time for the engine)
and ``repro/durability/journal.py`` (fsync bookkeeping may legitimately
touch the OS layer).  Bench/CLI layers outside ``repro`` may time
whatever they like.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile, dotted_name
from tools.caqe_check.report import Violation

CODE = "CQ007"

_EXEMPT_SUFFIXES = (
    "repro/core/clock.py",
    "repro/durability/journal.py",
)

_DATETIME_CALLS = {"now", "utcnow", "today", "fromtimestamp"}


def _in_scope(posix: str) -> bool:
    return "repro/" in posix and not posix.endswith(_EXEMPT_SUFFIXES)


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    violations: "list[Violation]" = []

    def emit(node: ast.AST, message: str) -> None:
        violation = file.violation(node, CODE, message)
        if violation is not None:
            violations.append(violation)

    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in ("time", "datetime"):
                    emit(
                        node,
                        f"import of {alias.name!r}: wall clocks are banned "
                        "in repro — charge the VirtualClock "
                        "(repro.core.clock) instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = (node.module or "").split(".")[0]
            if module in ("time", "datetime"):
                emit(
                    node,
                    f"import from {node.module!r}: wall clocks are banned "
                    "in repro — charge the VirtualClock "
                    "(repro.core.clock) instead",
                )
        elif isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is None or len(chain) < 2:
                continue
            if chain[0] == "time":
                emit(
                    node,
                    f"call to {'.'.join(chain)}: wall-clock read; "
                    "use stats.clock.now() / VirtualClock charges",
                )
            elif (
                chain[-1] in _DATETIME_CALLS
                and ("datetime" in chain[:-1] or "date" in chain[:-1])
            ):
                emit(
                    node,
                    f"call to {'.'.join(chain)}: wall-clock datetime; "
                    "the engine's notion of time is the VirtualClock",
                )
    return violations
