"""CQ005 — float-equality lint for the estimation/contract layer.

Contract scores, benefit estimates, and skyline-cardinality fits are all
floating-point pipelines; exact ``==`` / ``!=`` against a float literal in
them is almost always a latent bug (a value that arrives via one more
multiplication stops matching).  Use ``math.isclose`` or an explicit
epsilon comparison; sentinel checks that really do mean "bit-exact" can
carry ``# caqe-check: disable=CQ005``.

Scope: ``contracts/`` modules, ``core/benefit.py``, and
``skyline/estimate.py``.  Flagged: any ``==`` or ``!=`` where either side
is a float constant (``x == 0.0``, ``ratio != 1.0``).  Integer-constant
comparisons (``len(xs) == 0``) are not flagged.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile
from tools.caqe_check.report import Violation

CODE = "CQ005"

_SCOPE_FRAGMENTS = ("/contracts/", "core/benefit.py", "skyline/estimate.py")


def _in_scope(posix: str) -> bool:
    return any(fragment in posix for fragment in _SCOPE_FRAGMENTS)


def _is_float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Negative literals parse as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_constant(node.operand)
    return False


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    violations: "list[Violation]" = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Compare):
            continue
        comparators = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, comparators, comparators[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_constant(left) or _is_float_constant(right):
                violation = file.violation(
                    node,
                    CODE,
                    "exact equality against a float literal; use "
                    "math.isclose or an explicit epsilon",
                )
                if violation is not None:
                    violations.append(violation)
                break
    return violations
