"""CQ009 — per-row Python loops over relation columns in the hot path.

The columnar data plane (docs/ARCHITECTURE.md §12) keeps the region hot
path — tuple-level join, projection, and result commit — as array
programs: one numpy call over a whole region, never a Python-level loop
over the rows of a relation column.  A ``for`` loop that walks
``.tolist()`` output or a ``Relation.column(...)`` array re-boxes every
cell into a Python object and silently reverts the region cost model to
interpreter speed.

Scope: the hot-path modules ``core/executor.py``,
``parallel/joinkernel.py`` and ``skyline/window.py`` (whose SoA columns
— docs/ARCHITECTURE.md §16 — make per-row Python loops just as costly as
relation-column walks).  Flagged: ``for`` loops and comprehensions
whose iterable is

* an ``<array>.tolist()`` call (the canonical per-row unboxing);
* a ``.column(...)`` / ``.columns(...)`` relation accessor call;
* ``zip(...)`` / ``enumerate(...)`` / ``reversed(...)`` where any
  argument is (recursively) one of the above;
* a local name bound to one of the above in the same scope.

Deliberate scalar paths — the ablation corners that prove bit-identity
against the vectorised plane — carry ``# caqe-check: disable=CQ009``
with a justification comment.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile
from tools.caqe_check.report import Violation

CODE = "CQ009"

_SCOPE_SUFFIXES = (
    "core/executor.py",
    "parallel/joinkernel.py",
    "skyline/window.py",
)

_WRAPPERS = ("zip", "enumerate", "reversed")
_COLUMN_ATTRS = ("tolist", "column", "columns")


def _in_scope(posix: str) -> bool:
    return posix.endswith(_SCOPE_SUFFIXES)


def _is_rowwise_expr(node: ast.AST) -> "str | None":
    """Describe ``node`` if it yields per-row views of column data."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _COLUMN_ATTRS:
        if func.attr == "tolist":
            return ".tolist() result"
        return f".{func.attr}(...) relation column"
    if isinstance(func, ast.Name) and func.id in _WRAPPERS:
        for arg in node.args:
            inner = _is_rowwise_expr(arg)
            if inner is not None:
                return f"{func.id}(...) over {inner}"
    return None


class _ScopeVisitor:
    """Track column-bound names per scope and flag row-wise iterations."""

    def __init__(self, file: CheckedFile) -> None:
        self.file = file
        self.violations: "list[Violation]" = []

    def _iterable_kind(
        self, node: ast.AST, column_names: "dict[str, str]"
    ) -> "str | None":
        direct = _is_rowwise_expr(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Name):
            return column_names.get(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _WRAPPERS:
                for arg in node.args:
                    inner = self._iterable_kind(arg, column_names)
                    if inner is not None:
                        return f"{func.id}(...) over {inner}"
        return None

    def scan(self, body: "list[ast.stmt]") -> None:
        column_names: "dict[str, str]" = {}
        nodes: "list[ast.AST]" = []
        stack: "list[ast.AST]" = [
            stmt
            for stmt in body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        while stack:
            node = stack.pop()
            nodes.append(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)
        for node in nodes:
            if isinstance(node, ast.Assign):
                kind = _is_rowwise_expr(node.value)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            column_names[target.id] = kind
        iterables: "list[tuple[ast.AST, ast.AST]]" = []
        for node in nodes:
            if isinstance(node, ast.For):
                iterables.append((node, node.iter))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    iterables.append((node, generator.iter))
        for anchor, iterable in iterables:
            kind = self._iterable_kind(iterable, column_names)
            if kind is None:
                continue
            violation = self.file.violation(
                anchor,
                CODE,
                f"per-row loop over {kind}: hot-path modules must process "
                "regions as array programs (docs/ARCHITECTURE.md §12); "
                "vectorise, or pragma a deliberate scalar ablation path",
            )
            if violation is not None:
                self.violations.append(violation)


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    visitor = _ScopeVisitor(file)
    scopes: "list[list[ast.stmt]]" = [file.tree.body]
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node.body)
    for body in scopes:
        visitor.scan(body)
    return visitor.violations
