"""CQ012 — determinism taint: unordered values must not order anything.

``set``/``frozenset`` iteration order follows ``PYTHONHASHSEED`` and
insertion history; ``id()`` follows the allocator.  A value derived from
either is harmless as *data* but poison as an *ordering decision*: used
as a sort key, written into a journal record, pushed onto a scheduling
heap, or driving skyline insertion order, it silently breaks the
bit-identical-replay contract that the durability and parallel layers
are built on.

The taint pass in :mod:`tools.caqe_check.effects` tracks these values
interprocedurally: functions that *return* tainted values propagate the
taint to their callers (so a helper one call hop away still trips the
sink), and parameters that flow to the return value conduct taint
through wrappers.  Sinks are ``sorted(..., key=...)`` / ``.sort(key=...)``
keys, ``heapq.heappush`` payloads, and the ordering-sensitive calls
registered in ``effects.SINK_CALLS`` (journal append, skyline insert).

Sorting a tainted *iterable* is deliberately not a sink — ``sorted`` is
exactly how unordered collections are made deterministic; only the key
(the ordering decision itself) is checked.
"""

from __future__ import annotations

from tools.caqe_check.effects import analyze_program
from tools.caqe_check.engine import CheckedFile
from tools.caqe_check.report import Violation

CODE = "CQ012"


def check_project(
    files: "list[CheckedFile]", docs_text: "str | None"
) -> "list[Violation]":
    result = analyze_program(files)
    by_path = {file.posix: file for file in files}
    violations: "list[Violation]" = []
    for path, line, message in result.taint:
        file = by_path.get(path)
        if file is not None and file.suppressions.is_suppressed(CODE, line):
            continue
        violations.append(
            Violation(
                path,
                line,
                0,
                CODE,
                f"{message}; ordering-sensitive sinks must consume "
                "deterministic values (sort the source or key on stable "
                "identity)",
            )
        )
    return violations
