"""CQ001 — RNG discipline (DESIGN.md §6).

Every stochastic component must draw from a seeded stream handed out by
``repro.rng.ensure_rng`` / ``repro.rng.spawn``.  Inside ``repro`` (except
``repro/rng.py`` itself) this rule forbids:

* ``import random`` / ``from random import ...`` — the stdlib generator is
  global mutable state;
* ``import numpy.random`` / ``from numpy.random import ...`` — ditto for
  the legacy numpy surface;
* any *call* through ``np.random.*`` / ``numpy.random.*`` — both the
  global-state functions (``np.random.seed``, ``np.random.rand``) and ad
  hoc generator construction (``np.random.default_rng``).

``np.random.Generator`` used in annotations or ``isinstance`` checks is
fine — only calls and imports are flagged.
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile, dotted_name
from tools.caqe_check.report import Violation

CODE = "CQ001"

_NUMPY_ALIASES = {"np", "numpy"}


def _in_scope(posix: str) -> bool:
    return "repro/" in posix and not posix.endswith("repro/rng.py")


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    violations: "list[Violation]" = []

    def emit(node: ast.AST, message: str) -> None:
        violation = file.violation(node, CODE, message)
        if violation is not None:
            violations.append(violation)

    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random" or alias.name.startswith("numpy.random"):
                    emit(
                        node,
                        f"import of {alias.name!r}: draw from a seeded "
                        "stream via repro.rng.ensure_rng/spawn instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random"):
                emit(
                    node,
                    f"import from {module!r}: draw from a seeded stream "
                    "via repro.rng.ensure_rng/spawn instead",
                )
        elif isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if (
                chain is not None
                and len(chain) >= 3
                and chain[0] in _NUMPY_ALIASES
                and chain[1] == "random"
            ):
                emit(
                    node,
                    f"call to {'.'.join(chain)}: global/ad hoc numpy RNG; "
                    "route through repro.rng.ensure_rng/spawn",
                )
    return violations
