"""CQ011 — layer contracts: no upward imports, no import cycles.

The layer DAG declared in :mod:`tools.caqe_check.layers` replaces the
older rules' ad-hoc path-fragment scoping with a whole-program import
contract: every scanned ``repro`` module is assigned a layer, a module
may only import (at module scope) from its own layer or below, and the
static import graph must be acyclic at module granularity.

Function-scope and ``if``-block imports (``TYPE_CHECKING``, the
documented run-time inversion where ``core`` reaches up to
``durability``) are deferred edges and exempt — they cannot create
import-time cycles.  Upward *static* imports anchor at the import line;
cycles report the whole loop once, anchored at the smallest module's
first edge into the cycle.
"""

from __future__ import annotations

from tools.caqe_check.effects import analyze_program
from tools.caqe_check.engine import CheckedFile
from tools.caqe_check.layers import find_cycles, layer_of, rank_of
from tools.caqe_check.report import Violation

CODE = "CQ011"


def check_project(
    files: "list[CheckedFile]", docs_text: "str | None"
) -> "list[Violation]":
    result = analyze_program(files)
    by_path = {file.posix: file for file in files}
    violations: "list[Violation]" = []

    def emit(path: str, line: int, message: str) -> None:
        file = by_path.get(path)
        if file is not None and file.suppressions.is_suppressed(CODE, line):
            return
        violations.append(Violation(path, line, 0, CODE, message))

    scanned = set(result.modules)

    def resolve_target(target: str) -> "str | None":
        """Map an imported dotted path onto a scanned module."""
        if target in scanned:
            return target
        # ``from repro.core.caqe import CAQE`` records repro.core.caqe;
        # ``import repro.core`` may name a package → its __init__.
        parts = target.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in scanned:
                return candidate
            parts = parts[:-1]
        return None

    static_edges: "dict[str, list[str]]" = {name: [] for name in scanned}
    edge_lines: "dict[tuple[str, str], int]" = {}
    for name in sorted(scanned):
        info = result.modules[name]
        for target, line, lazy in info["imports"]:
            resolved = resolve_target(target)
            if resolved is None or resolved == name or lazy:
                continue
            static_edges[name].append(resolved)
            edge_lines.setdefault((name, resolved), line)
            source_layer = layer_of(name)
            target_layer = layer_of(resolved)
            if source_layer is None or target_layer is None:
                continue
            if rank_of(target_layer) > rank_of(source_layer):
                emit(
                    info["file"],
                    line,
                    f"upward import: {name} (layer {source_layer!r}) "
                    f"imports {resolved} (layer {target_layer!r}) at module "
                    "scope; move the dependency down the stack or defer the "
                    "import (see tools/caqe_check/layers.py)",
                )

    for cycle in find_cycles(static_edges):
        anchor = cycle[0]
        # First static edge from the anchor into the cycle.
        members = set(cycle)
        line = min(
            (
                edge_lines[(anchor, target)]
                for target in static_edges[anchor]
                if target in members and (anchor, target) in edge_lines
            ),
            default=1,
        )
        emit(
            result.modules[anchor]["file"],
            line,
            "import cycle at module scope: "
            + " -> ".join(cycle + [cycle[0]])
            + "; break it with a deferred (function-scope) import",
        )
    return violations
