"""CQ002 — dominance discipline (Definition 8 / Theorem 1 semantics).

The skyline literature is littered with subtly divergent dominance
variants; CAQE's correctness proofs assume exactly one (min-max cuboid
semantics, ties allowed, strict somewhere).  All dominance tests must
therefore call into :mod:`repro.skyline.dominance` — the one audited,
comparison-charging implementation — rather than re-deriving
``all(a <= b) and any(a < b)`` inline.

Scope: ``core/``, ``baselines/`` and ``plan/`` modules.  The rule flags a
boolean combination (``and`` / ``&``) whose operands pair an
``all``/``np.all`` over a ``<=``/``>=`` comparison with an
``any``/``np.any`` over a ``<``/``>`` comparison — either written inline
in one expression or staged through local variables::

    le = np.all(a <= b, axis=1)       # staged form
    lt = np.any(a < b, axis=1)
    mask = le & lt                    # <-- CQ002

    if np.all(u <= l) and np.any(u < l):   # <-- CQ002 (inline form)
"""

from __future__ import annotations

import ast

from tools.caqe_check.engine import CheckedFile, contains_compare, dotted_name
from tools.caqe_check.report import Violation

CODE = "CQ002"

_SCOPE_FRAGMENTS = ("/core/", "/baselines/", "/plan/")

#: Classification labels for sub-expressions.
_ALL_LE = "all_le"
_ANY_LT = "any_lt"


def _in_scope(posix: str) -> bool:
    return any(fragment in posix for fragment in _SCOPE_FRAGMENTS)


def _call_kind(node: ast.AST) -> "str | None":
    """Classify ``all(x <= y)`` / ``np.any(x < y)``-shaped calls."""
    if not isinstance(node, ast.Call) or not node.args:
        return None
    chain = dotted_name(node.func)
    if chain is None or chain[-1] not in ("all", "any"):
        return None
    arg = node.args[0]
    if chain[-1] == "all" and contains_compare(arg, (ast.LtE, ast.GtE)):
        return _ALL_LE
    if chain[-1] == "any" and contains_compare(arg, (ast.Lt, ast.Gt)):
        return _ANY_LT
    return None


class _FunctionScanner:
    """Classify names bound in one function body, then flag combiners."""

    def __init__(self) -> None:
        self.name_kinds: "dict[str, str]" = {}

    def classify(self, node: ast.AST) -> "str | None":
        direct = _call_kind(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Name):
            return self.name_kinds.get(node.id)
        return None

    def _walk_scope(self, body: "list[ast.stmt]") -> "list[ast.AST]":
        """Walk one scope without descending into nested function defs
        (each nested def is scanned as its own scope)."""
        nodes: "list[ast.AST]" = []
        stack: "list[ast.AST]" = [
            stmt
            for stmt in body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        while stack:
            node = stack.pop()
            nodes.append(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)
        return nodes

    def scan(self, body: "list[ast.stmt]") -> "list[ast.AST]":
        """Return the combiner nodes that pair ``all(<=)`` with ``any(<)``."""
        hits: "list[ast.AST]" = []
        nodes = self._walk_scope(body)
        # Two passes: bind every staged name first, then flag combiners, so
        # source order between assignment and use never matters.
        for node in nodes:
            if isinstance(node, ast.Assign):
                kind = _call_kind(node.value)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.name_kinds[target.id] = kind
        for node in nodes:
            operands: "list[ast.AST]" = []
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
                operands = list(node.values)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
                operands = [node.left, node.right]
            if not operands:
                continue
            kinds = {self.classify(op) for op in operands}
            if _ALL_LE in kinds and _ANY_LT in kinds:
                hits.append(node)
        return hits


def check(file: CheckedFile) -> "list[Violation]":
    if not _in_scope(file.posix):
        return []
    violations: "list[Violation]" = []
    scopes: "list[list[ast.stmt]]" = [file.tree.body]
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node.body)
    for body in scopes:
        scanner = _FunctionScanner()
        for hit in scanner.scan(body):
            violation = file.violation(
                hit,
                CODE,
                "inline tuple-dominance test (all(<=) combined with "
                "any(<)); call repro.skyline.dominance instead",
            )
            if violation is not None:
                violations.append(violation)
    return violations
