"""Per-function effect summaries by interprocedural fixpoint (CQ010/CQ012).

The effect lattice is a powerset over six atoms:

* ``MUTATES_NONLOCAL`` — writes state visible outside the function:
  ``global``/``nonlocal`` rebinding, attribute/subscript stores, or
  mutating container calls whose base is a parameter, ``self``/``cls``,
  or a module-level name (``__init__``/``__post_init__`` may initialise
  ``self`` attributes — that is construction, not shared-state mutation);
* ``IO`` — filesystem, stream, environment, or process-state access;
* ``WALL_CLOCK`` — reads of real time;
* ``UNSEEDED_RNG`` — randomness not derived from an explicit seed;
* ``UNORDERED_ITER`` — iteration over a ``set``/``frozenset`` value,
  whose order follows hash state;
* ``SPAWNS_PROCESS`` — process creation or control.

Direct effects are extracted syntactically per function (resolving
imported names so ``np.random.x`` is recognised through aliases); the
summary of a function is the union of its direct effects and the
summaries of every statically-resolved callee, computed as a worklist
fixpoint over the :class:`~tools.caqe_check.graph.ProgramGraph` call
graph.  Unresolvable dynamic calls contribute nothing — the analysis is
optimistic about what it cannot see and exact about what it can (the
contract is documented in ARCHITECTURE §13).

The same pass computes the determinism-taint summaries used by CQ012:
which functions *return* a value derived from set/dict iteration order or
``id()``, which parameters flow to the return value, and where tainted
values reach ordering-sensitive sinks (sort keys, journal records,
scheduling heaps, skyline insertion).

:func:`analyze_program` assembles everything into a serialisable
:class:`AnalysisResult` and maintains a content-hash summary cache so the
whole-program pass is amortised in CI: the key hashes every scanned
source plus the analysis code itself, so any change invalidates cleanly.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from tools.caqe_check.engine import CheckedFile, dotted_name
from tools.caqe_check.graph import ProgramGraph, _all_args

#: Bump when the analysis semantics change (cache invalidation).
ANALYSIS_VERSION = 1

MUTATES_NONLOCAL = "MUTATES_NONLOCAL"
IO = "IO"
WALL_CLOCK = "WALL_CLOCK"
UNSEEDED_RNG = "UNSEEDED_RNG"
UNORDERED_ITER = "UNORDERED_ITER"
SPAWNS_PROCESS = "SPAWNS_PROCESS"

EFFECTS = (
    MUTATES_NONLOCAL,
    IO,
    WALL_CLOCK,
    UNSEEDED_RNG,
    UNORDERED_ITER,
    SPAWNS_PROCESS,
)

#: Taint label marking "derived from unordered iteration or id()".
_SRC = "SRC"

# ------------------------------------------------------------------ #
# External knowledge base
# ------------------------------------------------------------------ #
#: Longest-prefix-match table: dotted external path → effect (or None
#: for an explicit "pure" carve-out that shadows a broader prefix).
_EXTERNAL_KB: "tuple[tuple[str, str | None], ...]" = (
    ("os.path.", None),
    ("os.fork", SPAWNS_PROCESS),
    ("os.forkpty", SPAWNS_PROCESS),
    ("os.system", SPAWNS_PROCESS),
    ("os.exec", SPAWNS_PROCESS),
    ("os.spawn", SPAWNS_PROCESS),
    ("os.posix_spawn", SPAWNS_PROCESS),
    ("os.kill", SPAWNS_PROCESS),
    ("os.urandom", UNSEEDED_RNG),
    ("os.", IO),
    ("multiprocessing.shared_memory.", IO),
    ("multiprocessing.", SPAWNS_PROCESS),
    ("subprocess.", SPAWNS_PROCESS),
    ("shutil.", IO),
    ("tempfile.", IO),
    ("socket.", IO),
    ("logging.", IO),
    ("sys.stdout", IO),
    ("sys.stderr", IO),
    ("sys.stdin", IO),
    ("time.", WALL_CLOCK),
    ("datetime.datetime.now", WALL_CLOCK),
    ("datetime.datetime.utcnow", WALL_CLOCK),
    ("datetime.datetime.today", WALL_CLOCK),
    ("datetime.date.today", WALL_CLOCK),
    ("random.", UNSEEDED_RNG),
    ("secrets.", UNSEEDED_RNG),
    ("uuid.uuid1", UNSEEDED_RNG),
    ("uuid.uuid4", UNSEEDED_RNG),
)

#: numpy RNG entry points that are *seeded* (pure) when called with
#: arguments and unseeded otherwise.
_SEEDABLE = (
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.Generator",
)

_BUILTIN_EFFECTS = {"open": IO, "print": IO, "input": IO, "breakpoint": IO}

#: Unresolved ``obj.method()`` names that imply I/O wherever they land.
_IO_METHODS = frozenset(
    {
        "write_text", "read_text", "write_bytes", "read_bytes", "unlink",
        "mkdir", "rmdir", "touch", "rename", "replace", "flush", "fsync",
        "readline", "readlines", "writelines",
    }
)

#: Container-mutating method names (used for MUTATES_NONLOCAL bases).
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "discard", "pop", "popitem",
        "clear", "update", "setdefault", "add", "sort", "reverse",
    }
)

#: Builtins that erase order-dependence (aggregations / canonical order).
_TAINT_SANITIZERS = frozenset(
    {"len", "sum", "sorted", "min", "max", "any", "all", "set", "frozenset"}
)

#: Builtins that pass data (and taint) through unchanged.
_TAINT_PASSTHROUGH = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate", "zip", "dict",
     "str", "int", "float", "abs", "round", "next", "map", "filter"}
)

#: Ordering-sensitive sink calls, matched on the resolved local target's
#: trailing ``Class.method`` / function name.
SINK_CALLS: "dict[str, str]" = {
    "RegionJournal.append": "a write-ahead journal record",
    "SkylineWindow.insert": "skyline insertion order",
    "SkylineWindow.insert_batch": "skyline insertion order",
    "SharedCuboidPlan.insert": "shared-plan insertion order",
}


def external_effect(dotted: str, node: ast.Call) -> "str | None":
    """Effect of a call into an unscanned module, per the KB."""
    for prefix in _SEEDABLE:
        if dotted == prefix or dotted.startswith(prefix + "."):
            seeded = bool(node.args) or bool(node.keywords)
            return None if seeded else UNSEEDED_RNG
    best: "tuple[int, str | None] | None" = None
    for prefix, effect in _EXTERNAL_KB:
        if dotted == prefix.rstrip(".") or dotted.startswith(prefix):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), effect)
    return best[1] if best is not None else None


# ------------------------------------------------------------------ #
# Set-likeness (unordered iteration sources)
# ------------------------------------------------------------------ #
def _is_set_like(node: ast.AST, set_names: "set[str]") -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        if chain is not None and len(chain) == 1 and chain[0] in (
            "set", "frozenset"
        ):
            return True
        if chain is not None and len(chain) == 1 and chain[0] in (
            "iter", "list", "tuple", "enumerate", "reversed", "zip"
        ):
            return any(_is_set_like(arg, set_names) for arg in node.args)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_like(node.left, set_names) or _is_set_like(
            node.right, set_names
        )
    return False


# ------------------------------------------------------------------ #
# Per-function direct facts
# ------------------------------------------------------------------ #
@dataclass
class _LocalFacts:
    """Direct effects + taint summary seeds for one function."""

    direct: "dict[str, str]"  # effect → "line N: detail"
    returns_taint: bool
    param_to_return: "tuple[int, ...]"
    sink_hits: "list[tuple[int, str]]"  # (line, message)


class _FunctionPass:
    """One lexical pass over a function body.

    Computes direct effects, and — given the current interprocedural
    taint summaries — the function's own taint summary and sink hits.
    """

    def __init__(self, graph: ProgramGraph, qualname: str, summaries) -> None:
        self.graph = graph
        self.fn = graph.functions[qualname]
        self.qualname = qualname
        self.summaries = summaries
        self.module = graph.modules[self.fn.module]
        self.module_globals = self._module_globals()
        self.call_targets = {
            id(site.node): site for site in graph.calls[qualname]
        }
        self.params = [a.arg for a in _all_args(self.fn.node)]
        self.is_ctor = self.fn.name.split(".")[-1] in (
            "__init__", "__post_init__"
        )

    def _module_globals(self) -> "set[str]":
        names: "set[str]" = set()
        for stmt in self.module.file.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                names.add(stmt.target.id)
        names.update(self.module.import_modules)
        names.update(self.module.import_symbols)
        return names

    # ------------------------------------------------------------ #
    def run(self) -> _LocalFacts:
        direct: "dict[str, str]" = {}
        sink_hits: "list[tuple[int, str]]" = []
        #: taint labels per local name: subset of {_SRC, 0..n_params-1}
        labels: "dict[str, set[object]]" = {
            name: {index} for index, name in enumerate(self.params)
        }
        #: local names currently bound to a set-like value
        set_names: "set[str]" = set()
        #: local names whose category is param/self/global via aliasing
        category: "dict[str, str]" = {name: "param" for name in self.params}
        for name in ("self", "cls"):
            if name in category:
                category[name] = "self"
        return_labels: "set[object]" = set()

        def note(effect: str, node: ast.AST, detail: str) -> None:
            if effect not in direct:
                line = getattr(node, "lineno", self.fn.line)
                direct[effect] = f"line {line}: {detail}"

        def base_category(node: ast.AST) -> "str | None":
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            name = node.id
            if name in ("self", "cls"):
                return "self"
            if name in category:
                return category[name]
            if name in self.module_globals:
                return "global"
            return None

        def expr_labels(node: "ast.AST | None") -> "set[object]":
            found: "set[object]" = set()
            if node is None:
                return found
            bound: "set[str]" = set()
            stack = [node]
            while stack:
                sub = stack.pop()
                if isinstance(sub, ast.Lambda):
                    bound.update(a.arg for a in _all_args(sub))
                    stack.append(sub.body)
                    continue
                if isinstance(sub, (ast.SetComp, ast.ListComp, ast.DictComp,
                                    ast.GeneratorExp)):
                    for comp in sub.generators:
                        for t in ast.walk(comp.target):
                            if isinstance(t, ast.Name):
                                bound.add(t.id)
                        if _is_set_like(comp.iter, set_names):
                            found.add(_SRC)
                        stack.append(comp.iter)
                    if isinstance(sub, ast.DictComp):
                        stack.extend([sub.key, sub.value])
                    else:
                        stack.append(sub.elt)
                    continue
                if isinstance(sub, ast.Call):
                    found |= call_labels(sub)
                    continue
                if isinstance(sub, ast.Name) and sub.id not in bound:
                    found |= labels.get(sub.id, set())
                stack.extend(ast.iter_child_nodes(sub))
            return found

        def call_labels(node: ast.Call) -> "set[object]":
            arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
            site = self.call_targets.get(id(node))
            chain = dotted_name(node.func)
            if chain is not None and chain == ("id",):
                return {_SRC}
            if site is not None and site.kind == "builtin":
                if site.target == "id":
                    return {_SRC}
                if site.target in _TAINT_SANITIZERS:
                    return set()
                if site.target in _TAINT_PASSTHROUGH:
                    out: "set[object]" = set()
                    for arg in arg_exprs:
                        out |= expr_labels(arg)
                    return out
            if site is not None and site.kind == "local":
                summary = self.summaries.get(site.target)
                out = set()
                if summary is not None:
                    if summary["returns_taint"]:
                        out.add(_SRC)
                    for index in summary["param_to_return"]:
                        offset = index
                        # Method calls bind param 0 (self) implicitly.
                        callee = self.graph.functions.get(site.target)
                        if (
                            callee is not None
                            and callee.class_name is not None
                            and isinstance(node.func, ast.Attribute)
                        ):
                            offset = index - 1
                        if 0 <= offset < len(node.args):
                            out |= expr_labels(node.args[offset])
                return out
            # Unknown/external: conservative pass-through of argument taint.
            out = set()
            for arg in arg_exprs:
                out |= expr_labels(arg)
            return out

        def check_sinks(node: ast.Call) -> None:
            site = self.call_targets.get(id(node))
            chain = dotted_name(node.func)
            # sorted(..., key=K) / obj.sort(key=K)
            is_sorted = site is not None and site.kind == "builtin" and (
                site.target == "sorted"
            )
            is_sort_method = chain is not None and chain[-1] == "sort"
            if is_sorted or is_sort_method:
                for kw in node.keywords:
                    if kw.arg == "key" and _SRC in expr_labels(kw.value):
                        sink_hits.append(
                            (
                                node.lineno,
                                "set-iteration/id() derived value reaches a "
                                "sort key",
                            )
                        )
                return
            if chain is not None and chain[-1] == "heappush":
                for arg in node.args[1:]:
                    if _SRC in expr_labels(arg):
                        sink_hits.append(
                            (
                                node.lineno,
                                "set-iteration/id() derived value reaches a "
                                "scheduling heap",
                            )
                        )
                return
            if site is not None and site.kind == "local":
                suffix = site.target.split(":")[-1]
                label = SINK_CALLS.get(suffix) or SINK_CALLS.get(
                    suffix.split(".")[-1]
                )
                if label is None:
                    return
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _SRC in expr_labels(arg):
                        sink_hits.append(
                            (
                                node.lineno,
                                "set-iteration/id() derived value reaches "
                                f"{label}",
                            )
                        )
                        return

        # Two lexical sweeps: the second stabilises names used before
        # their (lexically later) definition inside loops.
        statements = list(ast.walk(self.fn.node))
        for sweep in (0, 1):
            record = sweep == 1
            for node in statements:
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    if record:
                        note(
                            MUTATES_NONLOCAL,
                            node,
                            f"rebinds {'/'.join(node.names)} via "
                            f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}",
                        )
                elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = node.value
                    value_labels = expr_labels(value)
                    value_set_like = value is not None and _is_set_like(
                        value, set_names
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            if isinstance(node, ast.AugAssign):
                                labels.setdefault(target.id, set()).update(
                                    value_labels
                                )
                            else:
                                labels[target.id] = set(value_labels)
                            if value_set_like:
                                set_names.add(target.id)
                            elif not isinstance(node, ast.AugAssign):
                                set_names.discard(target.id)
                            if isinstance(value, ast.Name):
                                category[target.id] = category.get(
                                    value.id,
                                    "global"
                                    if value.id in self.module_globals
                                    else "local",
                                )
                            elif not isinstance(node, ast.AugAssign):
                                category[target.id] = "local"
                        elif isinstance(target, (ast.Tuple, ast.List)):
                            for element in ast.walk(target):
                                if isinstance(element, ast.Name):
                                    labels[element.id] = set(value_labels)
                                    category[element.id] = "local"
                        elif isinstance(target, (ast.Attribute, ast.Subscript)):
                            where = base_category(target)
                            exempt = (
                                self.is_ctor
                                and where == "self"
                                and isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                            )
                            if record and where in (
                                "param", "self", "global"
                            ) and not exempt:
                                note(
                                    MUTATES_NONLOCAL,
                                    node,
                                    f"stores into {where}-rooted state",
                                )
                elif isinstance(node, ast.For):
                    iter_labels = expr_labels(node.iter)
                    tainted = _is_set_like(node.iter, set_names)
                    if record and tainted:
                        note(
                            UNORDERED_ITER,
                            node,
                            "iterates a set/frozenset value",
                        )
                    for t in ast.walk(node.target):
                        if isinstance(t, ast.Name):
                            labels[t.id] = set(iter_labels) | (
                                {_SRC} if tainted else set()
                            )
                            category[t.id] = "local"
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    if record:
                        for comp in node.generators:
                            if _is_set_like(comp.iter, set_names):
                                note(
                                    UNORDERED_ITER,
                                    node,
                                    "comprehension over a set/frozenset value",
                                )
                elif isinstance(node, ast.Call):
                    if record:
                        self._call_effects(node, note)
                        check_sinks(node)
                elif isinstance(node, ast.Return):
                    if node.value is not None:
                        return_labels |= expr_labels(node.value)
            if sweep == 0:
                sink_hits.clear()
                return_labels.clear()

        return _LocalFacts(
            direct=direct,
            returns_taint=_SRC in return_labels,
            param_to_return=tuple(
                sorted(x for x in return_labels if isinstance(x, int))
            ),
            sink_hits=sorted(set(sink_hits)),
        )

    def _call_effects(self, node: ast.Call, note) -> None:
        site = self.call_targets.get(id(node))
        if site is None:
            return
        if site.kind == "builtin":
            effect = _BUILTIN_EFFECTS.get(site.target)
            if effect is not None:
                note(effect, node, f"calls {site.target}()")
        elif site.kind == "external":
            effect = external_effect(site.target, node)
            if effect is not None:
                note(effect, node, f"calls {site.target}")
        elif site.kind == "unknown" and site.target in _IO_METHODS:
            note(IO, node, f"calls .{site.target}() (I/O method)")
        # Mutating container calls on nonlocal bases.
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
            base = node.func.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                name = base.id
                if name in ("self", "cls"):
                    where: "str | None" = "self"
                elif name in self.params:
                    where = "param"
                elif name in self.module_globals:
                    where = "global"
                else:
                    where = None
                if where is not None:
                    note(
                        MUTATES_NONLOCAL,
                        node,
                        f"calls .{node.func.attr}() on {where}-rooted state",
                    )


# ------------------------------------------------------------------ #
# Whole-program analysis + summary cache
# ------------------------------------------------------------------ #
@dataclass
class AnalysisResult:
    """Serialisable whole-program analysis output."""

    functions: "dict[str, dict]"
    modules: "dict[str, dict]"
    taint: "list[list]"  # [file, line, message]

    def to_json(self) -> str:
        payload = {
            "version": ANALYSIS_VERSION,
            "functions": self.functions,
            "modules": self.modules,
            "taint": self.taint,
        }
        return json.dumps(payload, sort_keys=True, indent=1)

    @classmethod
    def from_payload(cls, payload: dict) -> "AnalysisResult":
        return cls(
            functions=payload["functions"],
            modules=payload["modules"],
            taint=[list(t) for t in payload["taint"]],
        )

    # -------------------------------------------------------------- #
    def reachable_from(self, roots: "list[str]") -> "list[str]":
        seen: "set[str]" = set()
        order: "list[str]" = []
        frontier = sorted(r for r in roots if r in self.functions)
        while frontier:
            next_frontier: "list[str]" = []
            for qualname in frontier:
                if qualname in seen:
                    continue
                seen.add(qualname)
                order.append(qualname)
                next_frontier.extend(self.functions[qualname]["calls"])
            frontier = sorted(set(next_frontier) - seen)
        return order

    def witness_path(self, roots: "list[str]", target: str) -> "list[str]":
        parents: "dict[str, str | None]" = {
            r: None for r in sorted(roots) if r in self.functions
        }
        frontier = sorted(parents)
        while frontier:
            next_frontier: "list[str]" = []
            for qualname in frontier:
                if qualname == target:
                    path = [qualname]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])  # type: ignore[arg-type]
                    return list(reversed(path))
                for callee in self.functions[qualname]["calls"]:
                    if callee in self.functions and callee not in parents:
                        parents[callee] = qualname
                        next_frontier.append(callee)
            frontier = sorted(next_frontier)
        return [target]


def _build_result(files: "list[CheckedFile]") -> AnalysisResult:
    graph = ProgramGraph(files)
    order = sorted(graph.functions)
    summaries: "dict[str, dict]" = {
        q: {"returns_taint": False, "param_to_return": ()} for q in order
    }
    facts: "dict[str, _LocalFacts]" = {}
    # Interprocedural fixpoint: taint summaries and effects only grow,
    # so iterate until stable (bounded by lattice height).
    for _round in range(12):
        changed = False
        for qualname in order:
            local = _FunctionPass(graph, qualname, summaries).run()
            facts[qualname] = local
            entry = summaries[qualname]
            if (
                local.returns_taint != entry["returns_taint"]
                or tuple(local.param_to_return) != tuple(entry["param_to_return"])
            ):
                entry["returns_taint"] = local.returns_taint
                entry["param_to_return"] = local.param_to_return
                changed = True
        if not changed:
            break
    # Effect fixpoint over the call graph.
    effects: "dict[str, set[str]]" = {
        q: set(facts[q].direct) for q in order
    }
    stable = False
    while not stable:
        stable = True
        for qualname in order:
            merged = set(effects[qualname])
            for callee in graph.local_callees(qualname):
                merged |= effects.get(callee, set())
            if merged != effects[qualname]:
                effects[qualname] = merged
                stable = False
    functions: "dict[str, dict]" = {}
    for qualname in order:
        fn = graph.functions[qualname]
        functions[qualname] = {
            "file": fn.file.posix,
            "line": fn.line,
            "direct": dict(sorted(facts[qualname].direct.items())),
            "effects": sorted(effects[qualname]),
            "calls": graph.local_callees(qualname),
            "returns_taint": bool(summaries[qualname]["returns_taint"]),
            "param_to_return": sorted(summaries[qualname]["param_to_return"]),
        }
    modules: "dict[str, dict]" = {}
    for name in sorted(graph.modules):
        info = graph.modules[name]
        modules[name] = {
            "file": info.file.posix,
            "imports": sorted(
                [edge.target, edge.line, edge.lazy] for edge in info.imports
            ),
        }
    taint: "list[list]" = []
    for qualname in order:
        fn = graph.functions[qualname]
        for line, message in facts[qualname].sink_hits:
            taint.append([fn.file.posix, line, message])
    taint.sort()
    return AnalysisResult(functions=functions, modules=modules, taint=taint)


def _content_key(files: "list[CheckedFile]") -> str:
    digest = hashlib.sha256()
    digest.update(f"analysis-v{ANALYSIS_VERSION}".encode())
    # The analysis code itself is part of the key: editing the engine
    # must invalidate cached summaries.
    package = Path(__file__).resolve().parent
    for source_file in sorted(package.glob("*.py")) + sorted(
        package.glob("rules/*.py")
    ):
        digest.update(source_file.name.encode())
        digest.update(source_file.read_bytes())
    for file in sorted(files, key=lambda f: f.posix):
        digest.update(file.posix.encode())
        digest.update(hashlib.sha256(file.source.encode()).digest())
    return digest.hexdigest()


#: In-memory memo: content key → result (one analysis per process/run).
_MEMO: "dict[str, AnalysisResult]" = {}

#: Disk cache directory; ``None`` disables persistence.  Configured by
#: the CLI via :func:`configure_cache`.
_CACHE_DIR: "Path | None" = None


def configure_cache(cache_dir: "Path | None") -> None:
    global _CACHE_DIR
    _CACHE_DIR = cache_dir


def analyze_program(files: "list[CheckedFile]") -> AnalysisResult:
    """Analysis entry point with content-hash memo + optional disk cache."""
    key = _content_key(files)
    cached = _MEMO.get(key)
    if cached is not None:
        return cached
    if _CACHE_DIR is not None:
        store = _CACHE_DIR / "effects.json"
        if store.exists():
            try:
                payload = json.loads(store.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = None
            if payload is not None and payload.get("key") == key:
                result = AnalysisResult.from_payload(payload["result"])
                _MEMO[key] = result
                return result
    result = _build_result(files)
    _MEMO[key] = result
    if _CACHE_DIR is not None:
        _CACHE_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "result": json.loads(result.to_json()),
        }
        (_CACHE_DIR / "effects.json").write_text(
            json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
        )
    return result


__all__ = [
    "ANALYSIS_VERSION",
    "EFFECTS",
    "AnalysisResult",
    "analyze_program",
    "configure_cache",
    "external_effect",
]
