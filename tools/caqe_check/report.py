"""Violation records and text/JSON/SARIF rendering for ``caqe-check``."""

from __future__ import annotations

import json
from dataclasses import dataclass

#: One-line descriptions per rule code, embedded in SARIF output.
RULE_DESCRIPTIONS = {
    "CQ000": "File does not parse; every rule is blind to it",
    "CQ001": "RNG discipline: randomness only via repro.rng.ensure_rng",
    "CQ002": "Dominance checks only via repro.skyline.dominance helpers",
    "CQ003": "Iteration-order hygiene in the scheduler/executor layer",
    "CQ004": "CAQEConfig fields must be read and documented",
    "CQ005": "No float-literal equality comparisons",
    "CQ006": "No bare/broad except without re-raise in src/repro",
    "CQ007": "No wall-clock reads in src/repro (virtual clock only)",
    "CQ008": "Process parallelism only via repro.parallel.RegionPool",
    "CQ009": "No per-row loops over relation columns in the hot path",
    "CQ010": "Worker purity: the prepare plane must be effect-free",
    "CQ011": "Layer contracts: no upward imports, no import cycles",
    "CQ012": "Determinism taint: unordered values must not order anything",
}


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def render_report(violations: "list[Violation]") -> str:
    """Deterministic (path, line, code)-sorted report, one hit per line."""
    lines = [v.render() for v in sorted(violations)]
    lines.append(
        f"caqe-check: {len(violations)} violation(s)"
        if violations
        else "caqe-check: clean"
    )
    return "\n".join(lines)


def render_json(violations: "list[Violation]") -> str:
    """Machine-readable report: sorted violations + count."""
    payload = {
        "tool": "caqe-check",
        "count": len(violations),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "message": v.message,
            }
            for v in sorted(violations)
        ],
    }
    return json.dumps(payload, sort_keys=True, indent=1)


def render_sarif(violations: "list[Violation]") -> str:
    """SARIF 2.1.0 — one run, one result per violation."""
    codes = sorted({v.code for v in violations} | set(RULE_DESCRIPTIONS))
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": RULE_DESCRIPTIONS.get(code, code),
            },
        }
        for code in codes
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {
                            "startLine": v.line,
                            "startColumn": max(v.col, 0) + 1,
                        },
                    }
                }
            ],
        }
        for v in sorted(violations)
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "caqe-check",
                        "informationUri": "docs/ARCHITECTURE.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, sort_keys=True, indent=1)


__all__ = [
    "RULE_DESCRIPTIONS",
    "Violation",
    "render_json",
    "render_report",
    "render_sarif",
]
