"""Violation records and plain-text rendering for ``caqe-check``."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def render_report(violations: "list[Violation]") -> str:
    """Deterministic (path, line, code)-sorted report, one hit per line."""
    lines = [v.render() for v in sorted(violations)]
    lines.append(
        f"caqe-check: {len(violations)} violation(s)"
        if violations
        else "caqe-check: clean"
    )
    return "\n".join(lines)
