"""Module import graph and call graph over the scanned tree.

This is the substrate for the whole-program rules (CQ010–CQ012): it maps
every scanned file to a dotted module name, indexes the functions and
classes each module defines, resolves ``import``/``from`` tables
(chasing re-exports through package ``__init__`` modules), and extracts
one :class:`CallSite` per ``ast.Call`` with the best static resolution
we can defend:

* names bound by ``def`` in the same module;
* imported names, including aliases and package re-exports;
* ``self.method()`` within a class;
* ``name.method()`` where ``name`` was assigned from a resolvable class
  constructor in the same function (local type inference);
* ``Class.method()`` on an imported or local class;
* dotted chains rooted at an imported external module (``np.random.x``
  → ``numpy.random.x``) — kept as *external* targets for the effect
  knowledge base;
* a unique-method fallback: an unresolved ``obj.m()`` resolves to
  ``Cls.m`` when exactly one scanned class defines ``m`` and ``m`` is not
  a common container-protocol name.

Everything else is an *unknown* call and — deliberately — carries no
effects: the analysis is optimistic on dynamic dispatch it cannot see,
and exact on everything it can.  The docs (ARCHITECTURE §13) spell out
this contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.caqe_check.engine import CheckedFile, dotted_name

#: Top-level packages recognised as module-name anchors in file paths.
_ANCHORS = ("repro", "tools")

#: Method names too generic for the unique-method fallback (container
#: protocol and friends — resolving these by name alone invites false
#: edges through builtin lists/dicts/queues).
_COMMON_METHODS = frozenset(
    {
        "append", "add", "extend", "insert", "remove", "discard", "pop",
        "popitem", "clear", "update", "setdefault", "get", "put", "keys",
        "values", "items", "sort", "reverse", "copy", "index", "count",
        "join", "split", "strip", "startswith", "endswith", "format",
        "encode", "decode", "read", "write", "close", "open", "item",
        "tolist", "astype", "reshape", "sum", "min", "max", "any", "all",
    }
)


def module_name_for(posix: str) -> "str | None":
    """``src/repro/core/caqe.py`` → ``repro.core.caqe`` (or ``None``)."""
    parts = posix.split("/")
    stem = parts[-1]
    if not stem.endswith(".py"):
        return None
    anchor = -1
    for index, part in enumerate(parts[:-1]):
        if part in _ANCHORS:
            anchor = index  # keep the *last* anchor (tmpdir may repeat it)
    if anchor < 0:
        return None
    dotted = parts[anchor:-1] + [stem[: -len(".py")]]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method defined in a scanned module."""

    qualname: str  # "repro.parallel.worker:worker_main" / "mod:Cls.meth"
    module: str
    name: str  # "worker_main" or "Cls.meth"
    class_name: "str | None"
    file: CheckedFile
    node: "ast.FunctionDef | ast.AsyncFunctionDef"

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass(frozen=True)
class ImportEdge:
    """One import statement linking two scanned modules."""

    target: str
    line: int
    #: ``False`` for module-scope (import-time) edges, ``True`` for
    #: imports nested in functions or ``if`` blocks (deferred edges that
    #: cannot create import-time cycles).
    lazy: bool


@dataclass(frozen=True)
class CallSite:
    """One ``ast.Call``'s resolution."""

    node: ast.Call
    #: "local" (scanned function), "external" (dotted path into an
    #: unscanned module), "builtin", or "unknown".
    kind: str
    #: Qualname, dotted external path, builtin name, or the bare method
    #: name for unknown attribute calls ("" when nothing is known).
    target: str


@dataclass
class ModuleInfo:
    """Per-module symbol tables."""

    name: str
    file: CheckedFile
    #: import alias → dotted target ("np" → "numpy", "journal_mod" →
    #: "repro.durability.journal").
    import_modules: "dict[str, str]" = field(default_factory=dict)
    #: from-import alias → (module, symbol) pending resolution.
    import_symbols: "dict[str, tuple[str, str]]" = field(default_factory=dict)
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)
    #: class name → {method name → FunctionInfo}
    classes: "dict[str, dict[str, FunctionInfo]]" = field(default_factory=dict)
    imports: "list[ImportEdge]" = field(default_factory=list)


class ProgramGraph:
    """Modules, functions, imports, and resolved call sites."""

    def __init__(self, files: "list[CheckedFile]") -> None:
        self.modules: "dict[str, ModuleInfo]" = {}
        self.functions: "dict[str, FunctionInfo]" = {}
        self._method_index: "dict[str, list[str]]" = {}
        self._attr_type_cache: "dict[tuple[str, str], dict[str, str]]" = {}
        for file in files:
            name = module_name_for(file.posix)
            if name is None or name in self.modules:
                continue
            self.modules[name] = self._index_module(name, file)
        for info in self.modules.values():
            for fn in info.functions.values():
                self.functions[fn.qualname] = fn
            for methods in info.classes.values():
                for fn in methods.values():
                    self.functions[fn.qualname] = fn
                    self._method_index.setdefault(
                        fn.name.split(".")[-1], []
                    ).append(fn.qualname)
        #: qualname → ordered, de-duplicated call sites.
        self.calls: "dict[str, list[CallSite]]" = {
            qualname: self._extract_calls(fn)
            for qualname, fn in sorted(self.functions.items())
        }

    # -------------------------------------------------------------- #
    # Indexing
    # -------------------------------------------------------------- #
    def _index_module(self, name: str, file: CheckedFile) -> ModuleInfo:
        info = ModuleInfo(name, file)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                lazy = not self._is_module_scope(file.tree, node)
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.import_modules.setdefault(bound, target)
                    info.imports.append(ImportEdge(alias.name, node.lineno, lazy))
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports are not used in this tree
                lazy = not self._is_module_scope(file.tree, node)
                for alias in node.names:
                    if alias.name == "*":
                        info.imports.append(
                            ImportEdge(node.module, node.lineno, lazy)
                        )
                        continue
                    # Record the most precise target: ``from pkg import sub``
                    # depends on ``pkg.sub`` (the submodule), not on the
                    # package ``__init__``.  Consumers fall back by prefix
                    # when ``pkg.name`` is a plain symbol, not a module.
                    info.imports.append(
                        ImportEdge(
                            f"{node.module}.{alias.name}", node.lineno, lazy
                        )
                    )
                    bound = alias.asname or alias.name
                    info.import_symbols.setdefault(bound, (node.module, alias.name))
        for stmt in file.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[stmt.name] = FunctionInfo(
                    f"{name}:{stmt.name}", name, stmt.name, None, file, stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                methods: "dict[str, FunctionInfo]" = {}
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[member.name] = FunctionInfo(
                            f"{name}:{stmt.name}.{member.name}",
                            name,
                            f"{stmt.name}.{member.name}",
                            stmt.name,
                            file,
                            member,
                        )
                info.classes[stmt.name] = methods
        return info

    @staticmethod
    def _is_module_scope(tree: ast.Module, node: ast.stmt) -> bool:
        return any(node is stmt for stmt in tree.body)

    # -------------------------------------------------------------- #
    # Symbol resolution
    # -------------------------------------------------------------- #
    def resolve_symbol(
        self, module: str, symbol: str, _seen: "frozenset[tuple[str, str]]" = frozenset()
    ) -> "tuple[str, str] | None":
        """Resolve ``symbol`` named in ``module`` to a graph entity.

        Returns ``("module", name)``, ``("function", qualname)``,
        ``("class", "mod:Cls")``, ``("external", dotted)`` or ``None``.
        Re-exports are chased through scanned ``__init__`` modules.
        """
        if (module, symbol) in _seen:
            return None
        _seen = _seen | {(module, symbol)}
        info = self.modules.get(module)
        if info is None:
            return ("external", f"{module}.{symbol}")
        if symbol in info.functions:
            return ("function", info.functions[symbol].qualname)
        if symbol in info.classes:
            return ("class", f"{module}:{symbol}")
        if symbol in info.import_modules:
            return ("module", info.import_modules[symbol])
        if symbol in info.import_symbols:
            source_module, source_symbol = info.import_symbols[symbol]
            if f"{source_module}.{source_symbol}" in self.modules:
                return ("module", f"{source_module}.{source_symbol}")
            return self.resolve_symbol(source_module, source_symbol, _seen)
        return None

    def _local_types(
        self, module: str, fn: FunctionInfo
    ) -> "dict[str, str]":
        """Names assigned from a resolvable class constructor → class."""
        types: "dict[str, str]" = {}
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            chain = dotted_name(node.value.func)
            if chain is None:
                continue
            resolved = self._resolve_chain(module, chain)
            if resolved is None or resolved[0] != "class":
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = resolved[1]
        return types

    def _resolve_chain(
        self, module: str, chain: "tuple[str, ...]"
    ) -> "tuple[str, str] | None":
        """Resolve a dotted chain (``a.b.c``) starting from ``module``."""
        head = self.resolve_symbol(module, chain[0])
        if head is None:
            return None
        kind, target = head
        for part in chain[1:]:
            if kind == "module":
                follow = self.resolve_symbol(target, part)
                if follow is None:
                    submodule = f"{target}.{part}"
                    if submodule in self.modules:
                        kind, target = "module", submodule
                        continue
                    return None
                kind, target = follow
            elif kind == "class":
                class_module, class_name = target.split(":")
                methods = self.modules[class_module].classes.get(class_name, {})
                if part in methods:
                    kind, target = "function", methods[part].qualname
                else:
                    return None
            elif kind == "external":
                target = f"{target}.{part}"
            else:
                return None  # attribute access on a function result
        return (kind, target)

    # -------------------------------------------------------------- #
    # Call extraction
    # -------------------------------------------------------------- #
    def _extract_calls(self, fn: FunctionInfo) -> "list[CallSite]":
        module = fn.module
        info = self.modules[module]
        local_types = self._local_types(module, fn)
        param_names = {a.arg for a in _all_args(fn.node)}
        sites: "list[CallSite]" = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            sites.append(
                self._resolve_call(fn, info, node, local_types, param_names)
            )
        return sites

    def _resolve_call(
        self,
        fn: FunctionInfo,
        info: ModuleInfo,
        node: ast.Call,
        local_types: "dict[str, str]",
        param_names: "set[str]",
    ) -> CallSite:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.resolve_symbol(info.name, func.id)
            if resolved is None:
                if func.id in param_names or func.id in local_types:
                    return CallSite(node, "unknown", "")
                return CallSite(node, "builtin", func.id)
            kind, target = resolved
            if kind == "function":
                return CallSite(node, "local", target)
            if kind == "class":
                init = self._class_method(target, "__init__")
                if init is not None:
                    return CallSite(node, "local", init)
                return CallSite(node, "unknown", "")
            if kind == "external":
                return CallSite(node, "external", target)
            return CallSite(node, "unknown", "")
        if not isinstance(func, ast.Attribute):
            return CallSite(node, "unknown", "")
        chain = dotted_name(func)
        if chain is None:
            return CallSite(node, "unknown", func.attr)
        if chain[0] in ("self", "cls") and fn.class_name is not None:
            if len(chain) == 3:
                # ``self.attr.method()`` through an inferred attribute type
                # (``self.attr = Cls(...)`` or an annotated ctor parameter).
                owner = self._attr_types(info.name, fn.class_name).get(chain[1])
                if owner is not None:
                    method = self._class_method(owner, chain[2])
                    if method is not None:
                        return CallSite(node, "local", method)
            resolved_method = self._resolve_chain(
                info.name, (fn.class_name,) + chain[1:]
            )
            if resolved_method is not None and resolved_method[0] == "function":
                return CallSite(node, "local", resolved_method[1])
            return CallSite(node, "unknown", chain[-1])
        if chain[0] in local_types and len(chain) == 2:
            method = self._class_method(local_types[chain[0]], chain[1])
            if method is not None:
                return CallSite(node, "local", method)
            return CallSite(node, "unknown", chain[-1])
        resolved = self._resolve_chain(info.name, chain)
        if resolved is not None:
            kind, target = resolved
            if kind == "function":
                return CallSite(node, "local", target)
            if kind == "class":
                init = self._class_method(target, "__init__")
                if init is not None:
                    return CallSite(node, "local", init)
                return CallSite(node, "unknown", "")
            if kind == "external":
                return CallSite(node, "external", target)
            return CallSite(node, "unknown", chain[-1])
        # Unique-method fallback.
        method_name = chain[-1]
        if method_name not in _COMMON_METHODS:
            owners = self._method_index.get(method_name, [])
            if len(owners) == 1:
                return CallSite(node, "local", owners[0])
        return CallSite(node, "unknown", method_name)

    def _attr_types(self, module: str, class_name: str) -> "dict[str, str]":
        """``self.attr`` → owning class, inferred across a class's methods.

        Two defensible sources: ``self.attr = Cls(...)`` where ``Cls``
        resolves to a scanned class, and ``self.attr = param`` where the
        parameter is annotated with one.  First writer wins (methods in
        definition order), keeping the result deterministic.
        """
        key = (module, class_name)
        cached = self._attr_type_cache.get(key)
        if cached is not None:
            return cached
        types: "dict[str, str]" = {}
        methods = self.modules[module].classes.get(class_name, {})
        for fn in methods.values():
            annotated: "dict[str, str]" = {}
            for arg in _all_args(fn.node):
                if arg.annotation is None:
                    continue
                chain = dotted_name(arg.annotation)
                if chain is None:
                    continue
                resolved = self._resolve_chain(module, chain)
                if resolved is not None and resolved[0] == "class":
                    annotated[arg.arg] = resolved[1]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                else:
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                owner: "str | None" = None
                if isinstance(value, ast.Call):
                    chain = dotted_name(value.func)
                    if chain is not None:
                        resolved = self._resolve_chain(module, chain)
                        if resolved is not None and resolved[0] == "class":
                            owner = resolved[1]
                elif isinstance(value, ast.Name):
                    owner = annotated.get(value.id)
                if owner is not None:
                    types.setdefault(target.attr, owner)
        self._attr_type_cache[key] = types
        return types

    def _class_method(self, class_qual: str, method: str) -> "str | None":
        class_module, class_name = class_qual.split(":")
        methods = self.modules[class_module].classes.get(class_name, {})
        fn = methods.get(method)
        return fn.qualname if fn is not None else None

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #
    def local_callees(self, qualname: str) -> "list[str]":
        """Sorted unique scanned-function callees of ``qualname``."""
        return sorted(
            {
                site.target
                for site in self.calls.get(qualname, [])
                if site.kind == "local"
            }
        )

    def reachable_from(self, roots: "list[str]") -> "list[str]":
        """Deterministic BFS closure over local call edges."""
        seen: "set[str]" = set()
        frontier = sorted(r for r in roots if r in self.functions)
        order: "list[str]" = []
        while frontier:
            next_frontier: "list[str]" = []
            for qualname in frontier:
                if qualname in seen:
                    continue
                seen.add(qualname)
                order.append(qualname)
                next_frontier.extend(self.local_callees(qualname))
            frontier = sorted(set(next_frontier) - seen)
        return order

    def witness_path(self, roots: "list[str]", target: str) -> "list[str]":
        """Shortest deterministic call chain root → ... → target."""
        parents: "dict[str, str | None]" = {
            r: None for r in sorted(roots) if r in self.functions
        }
        frontier = sorted(parents)
        while frontier:
            next_frontier = []
            for qualname in frontier:
                if qualname == target:
                    path = [qualname]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])  # type: ignore[arg-type]
                    return list(reversed(path))
                for callee in self.local_callees(qualname):
                    if callee not in parents:
                        parents[callee] = qualname
                        next_frontier.append(callee)
            frontier = sorted(next_frontier)
        return [target]


def _all_args(node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda"):
    args = node.args
    found = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        found.append(args.vararg)
    if args.kwarg is not None:
        found.append(args.kwarg)
    return found


__all__ = [
    "CallSite",
    "FunctionInfo",
    "ImportEdge",
    "ModuleInfo",
    "ProgramGraph",
    "module_name_for",
]
