"""``caqe-check`` — the CAQE repo-native static analysis suite.

Five AST-based rules encode the invariants the paper's correctness and
reproducibility claims rest on (see docs/ARCHITECTURE.md §6):

* **CQ001** RNG discipline — all randomness through ``repro.rng``;
* **CQ002** dominance discipline — no inline dominance re-implementations
  outside ``repro.skyline.dominance``;
* **CQ003** iteration-order hygiene in the scheduler/executor layer;
* **CQ004** every ``CAQEConfig`` field read somewhere and documented;
* **CQ005** no float-literal equality in the estimation/contract layer.

Suppress a hit with ``# caqe-check: disable=CQ00X`` (same line, the line
above, or file-wide above the module docstring).
"""

from tools.caqe_check.engine import CheckedFile, collect_files, run_checks
from tools.caqe_check.report import Violation, render_report

__all__ = [
    "CheckedFile",
    "Violation",
    "collect_files",
    "render_report",
    "run_checks",
]
