"""Declared layer DAG over ``src/repro`` (CQ011).

The engine's packages form a strict stack: lower layers never import
upward, and the module import graph is acyclic at *import time*.  PRs
1–6 kept this by convention; this table makes it a checked contract.

Layer order (bottom → top)::

    foundation   errors, rng
    relation     relation
    skyline      skyline
    query        query                (query uses skyline.bnl/dominance)
    structure    partition, plan, contracts, datagen
    parallel     parallel             (pure prepare plane)
    robustness   robustness           (faults/sanitize/recovery)
    core         core                 (driver; consumes everything below)
    durability   durability           (journals *around* core)
    baselines    baselines
    serving      serving
    drivers      bench, CLI __main__ modules, chaos harness, repro.__init__

Rules derived from the table:

* a module may import (at module scope) only modules in its own layer or
  below — a **static upward import** is a CQ011 violation;
* the static import graph must be acyclic at module granularity — each
  cycle is one CQ011 violation;
* imports nested inside functions or ``if`` blocks (``TYPE_CHECKING``,
  lazy plumbing such as ``core`` reaching up to ``durability`` at run
  time) are *deferred* edges: they cannot deadlock the import system and
  are exempt by design — the run-time direction inversion is the
  documented architecture (§10), not an accident.

Assignment is by longest package prefix, with exact-module overrides for
the handful of driver modules that live inside lower-layer packages
(``repro.robustness.chaos`` drives ``core``; ``repro.serving.__main__``
wires a demo; ``repro.__init__`` re-exports the world).
"""

from __future__ import annotations

#: Ordered bottom → top.  Index = layer rank.
LAYERS: "tuple[tuple[str, tuple[str, ...]], ...]" = (
    ("foundation", ("repro.errors", "repro.rng")),
    ("relation", ("repro.relation",)),
    ("skyline", ("repro.skyline",)),
    ("query", ("repro.query",)),
    ("structure", ("repro.partition", "repro.plan", "repro.contracts",
                   "repro.datagen")),
    ("parallel", ("repro.parallel",)),
    ("robustness", ("repro.robustness",)),
    ("core", ("repro.core",)),
    ("durability", ("repro.durability",)),
    ("baselines", ("repro.baselines",)),
    ("serving", ("repro.serving",)),
    ("drivers", ("repro.bench",)),
)

#: Exact-module assignments that win over the package prefix.
MODULE_OVERRIDES: "dict[str, str]" = {
    "repro": "drivers",            # package __init__ re-exports the stack
    "repro.__main__": "drivers",
    "repro.robustness.chaos": "drivers",   # chaos CLI drives core
    "repro.serving.__main__": "drivers",
}

_RANK: "dict[str, int]" = {
    name: rank for rank, (name, _prefixes) in enumerate(LAYERS)
}


def layer_of(module: str) -> "str | None":
    """Layer name for a dotted module, or ``None`` if unassigned."""
    override = MODULE_OVERRIDES.get(module)
    if override is not None:
        return override
    best: "tuple[int, str] | None" = None
    for name, prefixes in LAYERS:
        for prefix in prefixes:
            if module == prefix or module.startswith(prefix + "."):
                if best is None or len(prefix) > best[0]:
                    best = (len(prefix), name)
    return best[1] if best is not None else None


def rank_of(layer: str) -> int:
    return _RANK[layer]


def find_cycles(edges: "dict[str, list[str]]") -> "list[list[str]]":
    """Strongly connected components with ≥2 nodes (or a self-loop).

    Iterative Tarjan over a sorted node order, so the output is
    deterministic: each cycle is rotated to start at its smallest module
    and cycles are sorted by that module.
    """
    index: "dict[str, int]" = {}
    lowlink: "dict[str, int]" = {}
    on_stack: "set[str]" = set()
    stack: "list[str]" = []
    counter = [0]
    components: "list[list[str]]" = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges.get(root, []))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in edges:
                    continue
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(edges.get(successor, []))))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges.get(node, []):
                    smallest = min(component)
                    pivot = component.index(smallest)
                    components.append(
                        component[pivot:] + component[:pivot]
                    )

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sorted(components)


__all__ = ["LAYERS", "MODULE_OVERRIDES", "find_cycles", "layer_of", "rank_of"]
