"""Cross-``PYTHONHASHSEED`` determinism audit (regression gate).

PR 1 made "bit-identical across all four ablation corners" a tested
guarantee — but all of those runs share one interpreter, so a ``set``
iteration leaking ``str`` hash order into the region schedule would never
show up.  ``PYTHONHASHSEED`` is baked in at interpreter start, so this
audit launches **two child interpreters** with different hash seeds, runs
the paper's Figure-1 workload in each, and diffs every observable the
repo's equivalence tests pin down:

* ``ExecutionStats.region_trace`` — the exact region schedule;
* charged comparison counts (skyline + coarse) and the virtual clock;
* per-query reported identity sets.

Usage::

    python -m tools.determinism_audit              # audit (two children)
    python -m tools.determinism_audit --seeds 7 1234
    python -m tools.determinism_audit --child      # internal: one run

Exit status 0 iff every observable matches.  Run by CI and by
``python -m tools.caqe_check --determinism``.
"""

from __future__ import annotations

import argparse
import json
import sys

from tools._proc import SRC_ROOT, spawn_module

DEFAULT_SEEDS = (0, 42)

#: Observables diffed between the two runs, in report order.
OBSERVABLES = (
    "region_trace",
    "skyline_comparisons",
    "coarse_comparisons",
    "elapsed",
    "reported",
)


def run_workload() -> "dict[str, object]":
    """One Figure-1 run under the current interpreter's hash seed."""
    from repro.contracts import c2
    from repro.core import CAQE, CAQEConfig
    from repro.datagen import generate_pair
    from repro.query import JoinCondition, Preference, SkylineJoinQuery, add
    from repro.query.workload import Workload

    jc = JoinCondition.on("jc1", name="JC1")
    fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, 5))
    workload = Workload(
        [
            SkylineJoinQuery("Q1", jc, fns[:2], Preference.over("d1", "d2")),
            SkylineJoinQuery("Q2", jc, fns[:3], Preference.over("d1", "d2", "d3")),
            SkylineJoinQuery("Q3", jc, fns[1:3], Preference.over("d2", "d3")),
            SkylineJoinQuery("Q4", jc, fns[1:4], Preference.over("d2", "d3", "d4")),
        ]
    )
    pair = generate_pair("independent", 150, 4, selectivity=0.05, seed=23)
    contracts = {q.name: c2(scale=100.0) for q in workload}
    result = CAQE(CAQEConfig()).run(pair.left, pair.right, workload, contracts)
    return {
        "region_trace": list(result.stats.region_trace),
        "skyline_comparisons": int(result.stats.skyline_comparisons),
        "coarse_comparisons": int(result.stats.coarse_comparisons),
        "elapsed": float(result.stats.elapsed),
        "reported": {
            name: sorted([int(a), int(b)] for a, b in pairs)
            for name, pairs in sorted(result.reported.items())
        },
    }


def spawn_child(hash_seed: int) -> "dict[str, object]":
    """Run ``--child`` in a fresh interpreter under ``hash_seed``."""
    payload = spawn_module(
        "tools.determinism_audit",
        ["--child"],
        env_extra={"PYTHONHASHSEED": str(hash_seed)},
        label=f"determinism run, PYTHONHASHSEED={hash_seed}",
    )
    assert payload is not None
    return payload


def diff_runs(
    runs: "dict[int, dict[str, object]]",
) -> "list[str]":
    """Human-readable divergence report; empty iff deterministic."""
    seeds = sorted(runs)
    reference_seed = seeds[0]
    reference = runs[reference_seed]
    problems = []
    for seed in seeds[1:]:
        for key in OBSERVABLES:
            if runs[seed][key] != reference[key]:
                problems.append(
                    f"{key} diverges between PYTHONHASHSEED="
                    f"{reference_seed} and PYTHONHASHSEED={seed}:\n"
                    f"  {reference_seed}: {_compact(reference[key])}\n"
                    f"  {seed}: {_compact(runs[seed][key])}"
                )
    return problems


def _compact(value: object, limit: int = 400) -> str:
    text = json.dumps(value)
    return text if len(text) <= limit else text[:limit] + "...(truncated)"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="determinism-audit",
        description="Figure-1 workload under two PYTHONHASHSEED values",
    )
    parser.add_argument(
        "--child",
        action="store_true",
        help="internal: run once and print observables as JSON",
    )
    parser.add_argument(
        "--seeds",
        nargs=2,
        type=int,
        default=list(DEFAULT_SEEDS),
        metavar=("SEED_A", "SEED_B"),
        help="the two PYTHONHASHSEED values (default: 0 42)",
    )
    args = parser.parse_args(argv)

    if args.child:
        if str(SRC_ROOT) not in sys.path:
            sys.path.insert(0, str(SRC_ROOT))
        print(json.dumps(run_workload()))
        return 0

    runs = {seed: spawn_child(seed) for seed in args.seeds}
    problems = diff_runs(runs)
    if problems:
        print("determinism-audit: FAIL")
        for problem in problems:
            print(problem)
        return 1
    trace = runs[args.seeds[0]]["region_trace"]
    print(
        "determinism-audit: OK — region_trace "
        f"({len(trace)} regions), comparison counts, clock, and "
        f"reported identity sets identical under PYTHONHASHSEED="
        f"{args.seeds[0]} and {args.seeds[1]}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
