"""Shared child-interpreter harness for the audit tools.

``tools/determinism_audit.py`` and ``tools/kill_resume_audit.py`` both
launch fresh interpreters (``python -m tools.<audit> --child...``) with
``src`` prepended to ``PYTHONPATH`` and parse one JSON object from the
child's stdout.  This module is the single copy of that plumbing:

* :data:`REPO_ROOT` / :data:`SRC_ROOT` — canonical repo paths;
* :func:`child_env` — the caller's environment plus ``src`` on
  ``PYTHONPATH`` and any audit-specific overrides;
* :func:`spawn_module` — run ``python -m <module> <args>`` from the repo
  root and return the decoded JSON payload, or ``None`` for children
  that are *expected* to die of a signal (the SIGKILL audit).

Keeping this in one place means the two audits cannot drift apart on the
details that make child runs reproducible (working directory, path
setup, error surfacing).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"


def child_env(extra: "dict[str, str] | None" = None) -> "dict[str, str]":
    """Current environment with ``src`` on ``PYTHONPATH`` (+ overrides)."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_ROOT}{os.pathsep}{existing}" if existing else str(SRC_ROOT)
    )
    if extra:
        env.update(extra)
    return env


def spawn_module(
    module: str,
    args: "list[str]",
    *,
    env_extra: "dict[str, str] | None" = None,
    expect_signal: "int | None" = None,
    label: "str | None" = None,
) -> "dict | None":
    """Run ``python -m module *args`` in a child and decode its JSON stdout.

    With ``expect_signal`` set, the child is *required* to die of that
    signal (return code ``-expect_signal``) and ``None`` is returned; any
    other outcome — including a clean exit — raises, because a kill-audit
    child that survives its own SIGKILL proves nothing.
    """
    what = label or f"{module} {' '.join(args)}"
    proc = subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=REPO_ROOT,
        env=child_env(env_extra),
        capture_output=True,
        text=True,
    )
    if expect_signal is not None:
        if proc.returncode != -expect_signal:
            raise RuntimeError(
                f"expected child ({what}) to die of signal {expect_signal}, "
                f"got rc={proc.returncode}:\n{proc.stderr}"
            )
        return None
    if proc.returncode != 0:
        raise RuntimeError(f"child ({what}) failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


__all__ = ["REPO_ROOT", "SRC_ROOT", "child_env", "spawn_module"]
