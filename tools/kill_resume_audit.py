"""SIGKILL/resume audit for the write-ahead region journal (CI gate).

The durability layer's promise (docs/ARCHITECTURE.md §10) is that a run
killed at *any* instant resumes **bit-identically**: the journal is the
single source of truth, a crash between an fsync'd record and its
snapshot loses nothing, and the verify-then-append resume protocol
re-derives the exact observables the uninterrupted run would have
produced.  Unit tests simulate crashes by truncating directories; this
audit delivers the real thing:

1. run the Figure-1 workload (with an active fault plan, so the journal
   carries retry/quarantine history too) in a child interpreter to
   completion — the **reference** observables;
2. for each of three kill points, re-run in a fresh child that
   ``SIGKILL``s itself immediately after the N-th journal record hits
   disk — no ``atexit``, no flush-on-close, exactly what a power cut
   leaves behind;
3. resume from the survivor directory in yet another child and diff
   every pinned observable: ``region_trace``, skyline + coarse
   comparison counts, the virtual clock, per-query reported identity
   sets, and degraded reports;
4. one extra corner appends torn garbage to the journal tail before
   resuming — ``open_resume`` must truncate it and still match.

Usage::

    python -m tools.kill_resume_audit                # 3 seeds x 3 kills
    python -m tools.kill_resume_audit --quick        # 1 seed  x 2 kills
    python -m tools.kill_resume_audit --seeds 7 9 11

Exit status 0 iff every resumed run is bit-identical to its reference.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
from pathlib import Path

from tools._proc import SRC_ROOT, spawn_module

DEFAULT_SEEDS = (11, 23, 47)
KILL_FRACTIONS = (0.2, 0.55, 0.85)

#: Observables diffed between reference and resumed runs, in report order.
OBSERVABLES = (
    "region_trace",
    "skyline_comparisons",
    "coarse_comparisons",
    "elapsed",
    "reported",
    "degraded",
)


def _build_inputs(seed: int, workers: int = 0):
    """Deterministic inputs: Figure-1 workload + a seeded fault plan."""
    from repro.contracts import c2
    from repro.core import CAQEConfig
    from repro.datagen import generate_pair
    from repro.query import JoinCondition, Preference, SkylineJoinQuery, add
    from repro.query.workload import Workload
    from repro.robustness.faults import FaultConfig, FaultPlan
    from repro.robustness.recovery import RetryPolicy

    jc = JoinCondition.on("jc1", name="JC1")
    fns = tuple(add(f"m{i}", f"m{i}", f"d{i}") for i in range(1, 5))
    workload = Workload(
        [
            SkylineJoinQuery("Q1", jc, fns[:2], Preference.over("d1", "d2")),
            SkylineJoinQuery("Q2", jc, fns[:3], Preference.over("d1", "d2", "d3")),
            SkylineJoinQuery("Q3", jc, fns[1:3], Preference.over("d2", "d3")),
            SkylineJoinQuery("Q4", jc, fns[1:4], Preference.over("d2", "d3", "d4")),
        ]
    )
    pair = generate_pair("independent", 120, 4, selectivity=0.05, seed=seed)
    contracts = {q.name: c2(scale=100.0) for q in workload}
    plan = FaultPlan(
        FaultConfig(
            seed=seed,
            region_failure_rate=0.12,
            persistent_failure_rate=0.04,
            straggler_rate=0.2,
            straggler_factor=4.0,
        )
    )

    def config(journal_dir: str) -> CAQEConfig:
        return CAQEConfig(
            enable_recovery=True,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=plan,
            enable_journal=True,
            journal_dir=journal_dir,
            checkpoint_every_regions=7,
            workers=workers,
        )

    return pair, workload, contracts, config


def _observables(result) -> "dict[str, object]":
    return {
        "region_trace": list(result.stats.region_trace),
        "skyline_comparisons": int(result.stats.skyline_comparisons),
        "coarse_comparisons": int(result.stats.coarse_comparisons),
        "elapsed": float(result.stats.elapsed),
        "reported": {
            name: sorted([int(a), int(b)] for a, b in pairs)
            for name, pairs in sorted(result.reported.items())
        },
        "degraded": {
            name: sorted(
                [int(r.region_id), str(r.reason), float(r.timestamp)]
                for r in reports
            )
            for name, reports in sorted(result.degraded.items())
            if reports
        },
    }


def child_run(
    seed: int, journal_dir: str, kill_after: int, workers: int = 0
) -> int:
    """Run once; with ``kill_after`` > 0, SIGKILL after that many records."""
    from repro.core import CAQE
    from repro.durability import journal as journal_mod

    pair, workload, contracts, config = _build_inputs(seed, workers)

    if kill_after > 0:
        original_append = journal_mod.RegionJournal.append
        state = {"records": 0}

        def lethal_append(self, record):  # pragma: no cover - dies mid-run
            original_append(self, record)
            if "seq" in record:
                state["records"] += 1
                if state["records"] >= kill_after:
                    os.kill(os.getpid(), signal.SIGKILL)

        journal_mod.RegionJournal.append = lethal_append  # type: ignore[method-assign]

    result = CAQE(config(journal_dir)).run(
        pair.left, pair.right, workload, contracts
    )
    payload = _observables(result)
    payload["journal_records"] = _count_records(journal_dir)
    print(json.dumps(payload))
    return 0


def child_resume(seed: int, journal_dir: str, workers: int = 0) -> int:
    """Resume from a crashed directory and print the final observables."""
    from repro.durability import resume_run

    pair, workload, contracts, config = _build_inputs(seed, workers)
    result = resume_run(
        pair.left, pair.right, workload, contracts, config(journal_dir)
    )
    print(json.dumps(_observables(result)))
    return 0


def _count_records(journal_dir: str) -> int:
    from repro.durability.journal import JOURNAL_FILENAME

    path = Path(journal_dir) / JOURNAL_FILENAME
    with path.open("rb") as handle:
        return max(0, sum(1 for _ in handle) - 1)  # minus the header


def _spawn(args: "list[str]", expect_kill: bool = False) -> "dict | None":
    return spawn_module(
        "tools.kill_resume_audit",
        args,
        expect_signal=signal.SIGKILL if expect_kill else None,
    )


def _kill_points(total: int, seed: int, fractions) -> "list[int]":
    """Seed-jittered journal offsets, strictly inside the run."""
    points = []
    for index, fraction in enumerate(fractions):
        jitter = (seed + index) % 3
        points.append(max(1, min(total - 1, round(total * fraction) + jitter)))
    return sorted(set(points))


def audit_seed(
    seed: int,
    fractions,
    failures: "list[str]",
    torn_tail: bool,
    workers: int = 0,
) -> None:
    print(f"seed {seed}:")
    with tempfile.TemporaryDirectory(prefix="caqe-ref-") as ref_dir:
        reference = _spawn(
            [
                "--child-run",
                "--seed",
                str(seed),
                "--journal-dir",
                ref_dir,
                "--workers",
                "0",
            ]
        )
    assert reference is not None
    total = int(reference.pop("journal_records"))
    print(f"  reference run: {total} journal records")

    for kill_after in _kill_points(total, seed, fractions):
        with tempfile.TemporaryDirectory(prefix="caqe-kill-") as crash_dir:
            _spawn(
                [
                    "--child-run",
                    "--seed",
                    str(seed),
                    "--journal-dir",
                    crash_dir,
                    "--kill-after",
                    str(kill_after),
                    "--workers",
                    "0",
                ],
                expect_kill=True,
            )
            if torn_tail:
                _append_torn_tail(crash_dir)
            resumed = _spawn(
                [
                    "--child-resume",
                    "--seed",
                    str(seed),
                    "--journal-dir",
                    crash_dir,
                    "--workers",
                    "0",
                ]
            )
        assert resumed is not None
        drifted = [
            key for key in OBSERVABLES if resumed[key] != reference[key]
        ]
        label = (
            f"SIGKILL after record {kill_after}/{total}"
            + (" (+torn tail)" if torn_tail else "")
        )
        if drifted:
            print(f"  FAIL {label}: drift in {', '.join(drifted)}")
            failures.append(f"seed {seed}, {label}: {', '.join(drifted)}")
        else:
            print(f"  ok   {label}: resumed bit-identically")
        torn_tail = False  # one torn-tail corner per seed is plenty

    if workers:
        # SIGKILL-under-parallelism corner (docs/ARCHITECTURE.md §11.5):
        # the crashing run AND the resume both drive a worker pool; the
        # reference stayed serial, so a match proves kill-resume is
        # bit-identical across the parallel/serial boundary too.
        kill_after = _kill_points(total, seed, fractions)[-1]
        with tempfile.TemporaryDirectory(prefix="caqe-kill-") as crash_dir:
            _spawn(
                [
                    "--child-run",
                    "--seed",
                    str(seed),
                    "--journal-dir",
                    crash_dir,
                    "--kill-after",
                    str(kill_after),
                    "--workers",
                    str(workers),
                ],
                expect_kill=True,
            )
            resumed = _spawn(
                [
                    "--child-resume",
                    "--seed",
                    str(seed),
                    "--journal-dir",
                    crash_dir,
                    "--workers",
                    str(workers),
                ]
            )
        assert resumed is not None
        drifted = [
            key for key in OBSERVABLES if resumed[key] != reference[key]
        ]
        label = (
            f"SIGKILL after record {kill_after}/{total} "
            f"(workers={workers}, serial reference)"
        )
        if drifted:
            print(f"  FAIL {label}: drift in {', '.join(drifted)}")
            failures.append(f"seed {seed}, {label}: {', '.join(drifted)}")
        else:
            print(f"  ok   {label}: resumed bit-identically")


def _append_torn_tail(journal_dir: str) -> None:
    """Simulate a write torn mid-line by the crash."""
    from repro.durability.journal import JOURNAL_FILENAME

    path = Path(journal_dir) / JOURNAL_FILENAME
    with path.open("ab") as handle:
        handle.write(b'deadbeef {"seq": 99')


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="kill-resume-audit",
        description="SIGKILL a journaled run at random offsets and resume",
    )
    parser.add_argument("--child-run", action="store_true", help="internal")
    parser.add_argument("--child-resume", action="store_true", help="internal")
    parser.add_argument("--seed", type=int, default=11, help="internal")
    parser.add_argument("--journal-dir", default=None, help="internal")
    parser.add_argument(
        "--kill-after",
        type=int,
        default=0,
        help="internal: SIGKILL after this many journal records",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=list(DEFAULT_SEEDS),
        help="input/fault seeds to sweep (default: 11 23 47)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one seed, two kill points (local smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker-pool size for the SIGKILL-under-parallelism corner "
        "(0 disables it); also internal for child modes",
    )
    args = parser.parse_args(argv)

    if str(SRC_ROOT) not in sys.path:
        sys.path.insert(0, str(SRC_ROOT))

    if args.child_run or args.child_resume:
        if args.journal_dir is None:
            parser.error("--journal-dir is required for child modes")
        if args.child_run:
            return child_run(
                args.seed, args.journal_dir, args.kill_after, args.workers
            )
        return child_resume(args.seed, args.journal_dir, args.workers)

    seeds = args.seeds[:1] if args.quick else args.seeds
    fractions = KILL_FRACTIONS[:2] if args.quick else KILL_FRACTIONS
    failures: "list[str]" = []
    for seed in seeds:
        audit_seed(
            seed, fractions, failures, torn_tail=True, workers=args.workers
        )
    if failures:
        print(f"kill-resume-audit: FAIL — {len(failures)} divergent resume(s)")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        "kill-resume-audit: OK — every SIGKILL'd run resumed bit-identically "
        f"({len(seeds)} seed(s) x {len(fractions)} kill point(s), torn-tail "
        "corner included)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
